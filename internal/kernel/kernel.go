package kernel

import (
	"fmt"

	"powercontainers/internal/cpu"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// DefaultQuantum is the scheduler time slice.
const DefaultQuantum = 1 * sim.Millisecond

// Kernel simulates one machine: its cores, scheduler, sockets, devices and
// ground-truth energy recorder. Multiple kernels may share one sim.Engine
// to form a cluster on a single virtual timeline.
type Kernel struct {
	Eng     *sim.Engine
	Spec    cpu.MachineSpec
	Cores   []*cpu.Core
	Rec     *power.Recorder
	Monitor Monitor
	Disk    *Device
	Net     *Device

	// Audit observes socket segment flow for invariant checking
	// (internal/audit). Nil — the default — disables auditing; the hot
	// paths then pay only a nil check.
	Audit AuditSink

	// Faults, when non-nil, injects counter corruption, lost overflow
	// interrupts, and socket-tag loss (internal/faults). Nil — the
	// default — injects nothing.
	Faults FaultSurface

	// PerSegmentTagging selects the paper's safe per-segment socket
	// context tagging (true, the default) or the naive single-tag-per-
	// socket scheme it warns against (false; ablation only).
	PerSegmentTagging bool

	// TrapUserTransfers makes user-level request stage transfers
	// (OpUserStage) kernel-observable by trapping accesses to the
	// application's critical synchronization data structures — the
	// §3.3 future-work extension. Off by default, matching the paper's
	// published facility.
	TrapUserTransfers bool

	// Quantum is the scheduler time slice.
	Quantum sim.Time

	name     string
	segSeq   uint64 // audit-only segment identity counter
	running  []*Task
	runq     [][]*Task
	segStart []sim.Time
	segBusy  []bool // a segment-end event is pending for the core
	chipBusy []int
	nextPID  int
	tasks    []*Task

	// segEnd holds one pre-built segment-end callback per core, so the
	// scheduler's hottest path (runCore arming the next execution
	// segment) schedules timers without allocating a closure per
	// segment.
	segEnd []func()

	// maintEv/maintJoules memoize ChargeMaintenance's model evaluation:
	// the facility charges the same constant per-operation event vector
	// on every sample, so the observer energy is a per-core constant
	// that only needs recomputing if the event vector changes.
	maintEv     cpu.Counters
	maintJoules []float64 // per core; 0 means not yet computed

	// ContextSwitches counts scheduler-level task switches, for
	// overhead reporting.
	ContextSwitches uint64
}

// New builds a machine from its spec and hidden ground-truth profile. The
// monitor may be nil, in which case events are discarded.
func New(name string, spec cpu.MachineSpec, profile power.TrueProfile, eng *sim.Engine, mon Monitor) (*Kernel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		return nil, fmt.Errorf("kernel: nil engine")
	}
	if mon == nil {
		mon = NopMonitor{}
	}
	k := &Kernel{
		Eng:               eng,
		Spec:              spec,
		Rec:               power.NewRecorder(spec, profile),
		Monitor:           mon,
		Disk:              NewDisk(profile.DiskW),
		Net:               NewNIC(profile.NetW),
		PerSegmentTagging: true,
		Quantum:           DefaultQuantum,
		name:              name,
		running:           make([]*Task, spec.Cores()),
		runq:              make([][]*Task, spec.Cores()),
		segStart:          make([]sim.Time, spec.Cores()),
		segBusy:           make([]bool, spec.Cores()),
		chipBusy:          make([]int, spec.Chips),
	}
	for i := 0; i < spec.Cores(); i++ {
		k.Cores = append(k.Cores, cpu.NewCore(i, spec))
	}
	k.segEnd = make([]func(), spec.Cores())
	for c := range k.segEnd {
		c := c
		k.segEnd[c] = func() { k.onSegmentEnd(c) }
	}
	k.maintJoules = make([]float64, spec.Cores())
	return k, nil
}

// Name returns the machine's diagnostic name.
func (k *Kernel) Name() string { return k.name }

// Now returns the shared virtual time.
func (k *Kernel) Now() sim.Time { return k.Eng.Now() }

// Tasks returns every task ever created, in PID order.
func (k *Kernel) Tasks() []*Task { return k.tasks }

// ReadCounters returns the cumulative counters of a core as the monitoring
// facility observes them: the raw hardware values, routed through the fault
// surface (which may wrap them like a narrow MSR) when one is installed.
func (k *Kernel) ReadCounters(core int) cpu.Counters {
	raw := k.Cores[core].Counters()
	if k.Faults != nil {
		return k.Faults.WrapCounters(core, raw)
	}
	return raw
}

// CounterWrapModulus reports the fault surface's counter wraparound
// modulus, or 0 when counters are delivered unwrapped.
func (k *Kernel) CounterWrapModulus() float64 {
	if k.Faults != nil {
		return k.Faults.WrapModulus()
	}
	return 0
}

// CoreIdle reports whether the OS is currently scheduling the idle task on
// the given core — the check Eq. 3 uses to treat stale sibling samples as
// zero activity.
func (k *Kernel) CoreIdle(core int) bool { return k.running[core] == nil }

// RunningTask returns the task currently on the core, or nil.
func (k *Kernel) RunningTask(core int) *Task { return k.running[core] }

// BusyCores returns the number of cores currently running a task.
func (k *Kernel) BusyCores() int {
	n := 0
	for _, t := range k.running {
		if t != nil {
			n++
		}
	}
	return n
}

// Spawn creates a top-level task running prog with the given initial
// context binding and makes it runnable.
func (k *Kernel) Spawn(name string, prog Program, ctx Context) *Task {
	t := k.newTask(name, prog, ctx, nil)
	k.Monitor.OnTaskStart(t)
	k.makeRunnable(t)
	return t
}

func (k *Kernel) newTask(name string, prog Program, ctx Context, parent *Task) *Task {
	k.nextPID++
	t := &Task{
		PID:     k.nextPID,
		Name:    name,
		Ctx:     ctx,
		state:   TaskReady,
		core:    -1,
		prog:    prog,
		parent:  parent,
		created: k.Now(),
	}
	k.tasks = append(k.tasks, t)
	return t
}

// Inject delivers an external message (a new client request or a
// cross-machine hop) to a listener, tagged with the given context and
// carrying an opaque payload.
func (k *Kernel) Inject(l *Listener, bytes int, ctx Context, payload any) {
	if k.Faults != nil && k.Faults.DropInjectTag(k.Now()) {
		ctx = loseTag(ctx)
	}
	if len(l.waiting) > 0 {
		w := l.waiting[0]
		l.waiting = l.waiting[1:]
		w.blockedLst = nil
		w.LastRecv = payload
		if k.Audit != nil {
			seq := k.nextSegSeq()
			k.Audit.OnSockEnqueue(l, seq, bytes, ctx)
			k.Audit.OnSockDeliver(l, seq, bytes, ctx)
		}
		k.applyBinding(w, ctx)
		k.wake(w)
		return
	}
	seg := segment{bytes: bytes, ctx: ctx, payload: payload}
	if k.Audit != nil {
		seg.seq = k.nextSegSeq()
		k.Audit.OnSockEnqueue(l, seg.seq, bytes, ctx)
	}
	l.segs = append(l.segs, seg)
}

// Rebind changes a task's context binding through the monitor, exactly as
// if a message tagged with ctx had been read: pre-switch counters attribute
// to the old binding first. Server workers use it to unbind between
// requests.
func (k *Kernel) Rebind(t *Task, ctx Context) { k.applyBinding(t, ctx) }

// ---- scheduling core ----

// makeRunnable places a ready task: onto an idle core if one exists
// (preferring the chip with the fewest busy cores, which reproduces the
// spread-across-sockets behaviour of Figure 1), otherwise onto the shortest
// run queue.
func (k *Kernel) makeRunnable(t *Task) {
	if t.state != TaskReady {
		panic(fmt.Sprintf("kernel: makeRunnable on %v", t))
	}
	best := -1
	bestBusy := 0
	for c := range k.Cores {
		if k.running[c] != nil {
			continue
		}
		busy := k.chipBusy[k.Spec.ChipOf(c)]
		if best == -1 || busy < bestBusy {
			best, bestBusy = c, busy
		}
	}
	if best >= 0 {
		k.enterCore(best, t)
		k.runCore(best)
		return
	}
	// All cores busy: shortest queue, lowest index on ties.
	best = 0
	for c := 1; c < len(k.runq); c++ {
		if len(k.runq[c]) < len(k.runq[best]) {
			best = c
		}
	}
	k.runq[best] = append(k.runq[best], t)
}

// popBest removes and returns the highest-priority (FIFO among equals)
// task of a queue, or nil if empty.
func popBest(q *[]*Task) *Task {
	if len(*q) == 0 {
		return nil
	}
	best := 0
	for i, t := range (*q)[1:] {
		if t.Priority > (*q)[best].Priority {
			best = i + 1
		}
	}
	t := (*q)[best]
	*q = append((*q)[:best], (*q)[best+1:]...)
	return t
}

// pickNext pops the next ready task for core c — highest priority first,
// FIFO among equals — stealing from the longest sibling queue when the
// local queue is empty.
func (k *Kernel) pickNext(c int) *Task {
	if t := popBest(&k.runq[c]); t != nil {
		return t
	}
	victim, max := -1, 0
	for q := range k.runq {
		if len(k.runq[q]) > max {
			victim, max = q, len(k.runq[q])
		}
	}
	if victim < 0 {
		return nil
	}
	return popBest(&k.runq[victim])
}

// enterCore installs t on an idle core.
//
//pclint:hotpath
func (k *Kernel) enterCore(c int, t *Task) {
	if k.running[c] != nil {
		panic(fmt.Sprintf("kernel: enterCore on busy core %d", c)) //pclint:allow hotalloc panic-path formatting on an invariant violation
	}
	k.running[c] = t
	t.core = c
	t.state = TaskRunning
	t.sliceExpiry = k.Now() + k.Quantum
	chip := k.Spec.ChipOf(c)
	k.chipBusy[chip]++
	k.Rec.SetChipBusyCores(chip, k.chipBusy[chip], k.Now())
	k.ContextSwitches++
	k.Monitor.OnSwitch(k.Cores[c], nil, t)
}

// leaveCore removes the running task from its core; state must be set by
// the caller afterwards (blocked/zombie/ready).
//
//pclint:hotpath
func (k *Kernel) leaveCore(c int, t *Task) {
	if k.running[c] != t {
		panic(fmt.Sprintf("kernel: leaveCore mismatch on core %d", c)) //pclint:allow hotalloc panic-path formatting on an invariant violation
	}
	k.Monitor.OnSwitch(k.Cores[c], t, nil)
	k.running[c] = nil
	t.core = -1
	chip := k.Spec.ChipOf(c)
	k.chipBusy[chip]--
	k.Rec.SetChipBusyCores(chip, k.chipBusy[chip], k.Now())
	k.ContextSwitches++
}

// runCore drives core c until it has either a scheduled execution segment
// or nothing to run.
func (k *Kernel) runCore(c int) {
	for {
		if k.segBusy[c] {
			// A nested call (e.g. a task exit waking its parent onto
			// this just-freed core) already scheduled the segment.
			return
		}
		t := k.running[c]
		if t == nil {
			t = k.pickNext(c)
			if t == nil {
				return // core idles; wakeups restart it
			}
			k.enterCore(c, t)
			continue
		}
		if !t.computing {
			k.advanceProgram(c, t)
			if k.running[c] != t {
				continue // t blocked or exited
			}
		}
		core := k.Cores[c]
		d := core.WallFor(t.remCycles)
		if ov := core.TimeToOverflow(); ov < d {
			d = ov
		}
		if sl := t.sliceExpiry - k.Now(); sl < d {
			d = sl
		}
		if d < 1 {
			d = 1
		}
		k.segStart[c] = k.Now()
		k.segBusy[c] = true
		k.Eng.After(d, k.segEnd[c])
		return
	}
}

// onSegmentEnd accounts for the elapsed execution segment on core c, then
// handles whichever boundaries were crossed: counter overflow, op
// completion, quantum expiry.
func (k *Kernel) onSegmentEnd(c int) {
	k.segBusy[c] = false
	t := k.running[c]
	if t == nil {
		panic(fmt.Sprintf("kernel: segment end on idle core %d", c))
	}
	core := k.Cores[c]
	now := k.Now()
	start := k.segStart[c]
	if now > start {
		ev := core.AdvanceBusy(now-start, t.effAct)
		k.Rec.AddCoreSegment(start, now, t.effAct, core.DutyFraction())
		t.remCycles -= ev.Cycles
	}
	if core.Overflowed() {
		// Overflowed() self-resets the latch; it must be consumed even
		// when the fault surface drops the interrupt delivery itself.
		if k.Faults == nil || !k.Faults.DropInterrupt(c, now) {
			k.Monitor.OnInterrupt(core, t)
		}
	}
	if t.remCycles <= 0.5 {
		t.computing = false
		t.remCycles = 0
	}
	if t.computing && now >= t.sliceExpiry {
		if len(k.runq[c]) > 0 {
			// Quantum expired with waiters: rotate.
			k.leaveCore(c, t)
			t.state = TaskReady
			k.runq[c] = append(k.runq[c], t)
		} else {
			t.sliceExpiry = now + k.Quantum
		}
	}
	k.runCore(c)
}

// advanceProgram executes non-compute ops until the task starts computing,
// blocks, or exits. It must be called with t running on core c.
func (k *Kernel) advanceProgram(c int, t *Task) {
	const maxOpsPerVisit = 100000
	for guard := 0; ; guard++ {
		if guard > maxOpsPerVisit {
			panic(fmt.Sprintf("kernel: %v issued %d consecutive zero-work ops", t, guard))
		}
		op := t.prog.Next(k, t)
		if op == nil {
			k.exitTask(c, t)
			return
		}
		switch op := op.(type) {
		case OpCompute:
			cycles, eff := cpu.Execution(k.Spec, op.BaseCycles, op.Act)
			if cycles <= 0 {
				continue
			}
			t.computing = true
			t.remCycles = cycles
			t.effAct = eff
			return

		case OpSend:
			k.send(t, op.End, op.Bytes, op.Payload)

		case OpRecv:
			buf := op.End.recvBuf()
			if !buf.empty() {
				seg := buf.pop()
				t.LastRecv = seg.payload
				if k.Audit != nil {
					k.Audit.OnSockDeliver(buf, seg.seq, seg.bytes, seg.ctx)
				}
				k.applyBinding(t, k.tagOf(buf, seg))
				continue
			}
			buf.waiting = append(buf.waiting, t)
			k.block(c, t)
			t.blockedRecv = buf
			return

		case OpRecvListener:
			l := op.L
			if len(l.segs) > 0 {
				seg := l.segs[0]
				l.segs = l.segs[1:]
				t.LastRecv = seg.payload
				if k.Audit != nil {
					k.Audit.OnSockDeliver(l, seg.seq, seg.bytes, seg.ctx)
				}
				k.applyBinding(t, seg.ctx)
				continue
			}
			l.waiting = append(l.waiting, t)
			k.block(c, t)
			t.blockedLst = l
			return

		case OpFork:
			child := k.newTask(op.Name, op.Prog, t.Ctx, t)
			t.liveChildren++
			k.Monitor.OnTaskStart(child)
			k.Monitor.OnFork(t, child)
			k.makeRunnable(child)

		case OpWaitChild:
			if len(t.zombies) > 0 {
				k.reapOne(t)
				continue
			}
			if t.liveChildren == 0 {
				continue // nothing to wait for
			}
			t.waitingChild = true
			k.block(c, t)
			return

		case OpSleep:
			k.block(c, t)
			if t.wakeFn == nil {
				t.wakeFn = func() { k.wake(t) }
			}
			k.Eng.After(op.D, t.wakeFn)
			return

		case OpDisk:
			k.deviceOp(c, t, k.Disk, op.Bytes)
			return

		case OpNet:
			k.deviceOp(c, t, k.Net, op.Bytes)
			return

		case OpCall:
			op.Fn(k, t)

		case OpUserStage:
			t.UserCtx = op.Ctx
			if k.TrapUserTransfers {
				k.applyBinding(t, op.Ctx)
			}

		default:
			panic(fmt.Sprintf("kernel: unknown op %T", op))
		}
	}
}

// tagOf returns the request-context tag a receiver should adopt for a
// segment, honouring the tagging mode.
func (k *Kernel) tagOf(buf *sockBuf, seg segment) Context {
	if k.PerSegmentTagging {
		return seg.ctx
	}
	return buf.lastCtx
}

// applyBinding switches a task's request-context binding, notifying the
// monitor first so pre-switch counters attribute to the old binding.
func (k *Kernel) applyBinding(t *Task, ctx Context) {
	if ctx == t.Ctx {
		return
	}
	k.Monitor.OnBind(t, ctx)
	t.Ctx = ctx
}

// send appends a tagged segment, waking a blocked receiver directly.
func (k *Kernel) send(t *Task, e *Endpoint, bytes int, payload any) {
	ctx := t.Ctx
	if k.Faults != nil && k.Faults.DropSendTag(k.Now()) {
		// The tag is lost before the segment enters the buffer, so the
		// audit stream sees the untagged segment consistently at both
		// enqueue and deliver.
		ctx = loseTag(ctx)
	}
	buf := e.sendBuf()
	buf.lastCtx = ctx
	if len(buf.waiting) > 0 {
		w := buf.waiting[0]
		buf.waiting = buf.waiting[1:]
		w.blockedRecv = nil
		w.LastRecv = payload
		if k.Audit != nil {
			seq := k.nextSegSeq()
			k.Audit.OnSockEnqueue(buf, seq, bytes, ctx)
			k.Audit.OnSockDeliver(buf, seq, bytes, ctx)
		}
		k.applyBinding(w, ctx)
		k.wake(w)
		return
	}
	seg := segment{bytes: bytes, ctx: ctx, payload: payload}
	if k.Audit != nil {
		seg.seq = k.nextSegSeq()
		k.Audit.OnSockEnqueue(buf, seg.seq, bytes, ctx)
	}
	buf.segs = append(buf.segs, seg)
}

// nextSegSeq returns a fresh audit identity for a socket segment.
func (k *Kernel) nextSegSeq() uint64 {
	k.segSeq++
	return k.segSeq
}

// block removes a running task from its core into the blocked state.
func (k *Kernel) block(c int, t *Task) {
	k.leaveCore(c, t)
	t.state = TaskBlocked
}

// wake makes a blocked task runnable.
func (k *Kernel) wake(t *Task) {
	if t.state != TaskBlocked {
		panic(fmt.Sprintf("kernel: wake on %v", t))
	}
	t.state = TaskReady
	t.blockedRecv = nil
	t.blockedLst = nil
	k.makeRunnable(t)
}

// deviceOp reserves device time for a synchronous transfer, blocks the
// task, and attributes the device energy when the transfer completes.
func (k *Kernel) deviceOp(c int, t *Task, dev *Device, bytes int64) {
	start, done := dev.schedule(k.Now(), bytes)
	k.Rec.AddDeviceSegment(start, done, dev.BusyWatts)
	k.block(c, t)
	busy := done - start
	k.Eng.At(done, func() {
		k.Monitor.OnIO(t, dev.Kind, bytes, busy, dev.BusyWatts)
		k.wake(t)
	})
}

// reapOne reaps one zombie child of t.
func (k *Kernel) reapOne(t *Task) {
	z := t.zombies[0]
	t.zombies = t.zombies[1:]
	z.state = TaskDead
}

// exitTask terminates t, notifying the monitor after final attribution and
// waking a waiting parent.
func (k *Kernel) exitTask(c int, t *Task) {
	k.leaveCore(c, t)
	t.state = TaskZombie
	t.exited = k.Now()
	k.Monitor.OnExit(t)
	p := t.parent
	if p == nil || p.state == TaskDead || p.state == TaskZombie {
		t.state = TaskDead
		return
	}
	p.liveChildren--
	p.zombies = append(p.zombies, t)
	if p.waitingChild {
		p.waitingChild = false
		k.reapOne(p)
		k.wake(p)
	}
}

// ChargeMaintenance models the observer effect of one facility maintenance
// operation: the given events are injected into the core's counters and the
// corresponding true energy is charged to the package. The facility calls
// this for every sampling operation it performs — once per context switch
// and once per overflow interrupt — with a constant event vector, so the
// model evaluation is memoized per core and the steady-state cost is one
// counter add plus one recorder charge.
//
//pclint:hotpath
func (k *Kernel) ChargeMaintenance(core int, ev cpu.Counters) {
	cc := k.Cores[core]
	cc.AddEvents(ev)
	if ev.Cycles <= 0 {
		return
	}
	if ev == k.maintEv && k.maintJoules[core] > 0 {
		k.Rec.AddObserverEnergy(k.Now(), k.maintJoules[core])
		return
	}
	act := cpu.Activity{
		IPC:   ev.Instructions / ev.Cycles,
		FLOPC: ev.Float / ev.Cycles,
		LLCPC: ev.Cache / ev.Cycles,
		MemPC: ev.Mem / ev.Cycles,
	}
	watts := k.Rec.Profile().CorePowerW(act, 1.0)
	seconds := ev.Cycles / cc.FreqHz
	joules := watts * seconds
	if ev != k.maintEv {
		k.maintEv = ev
		for i := range k.maintJoules {
			k.maintJoules[i] = 0
		}
	}
	k.maintJoules[core] = joules
	k.Rec.AddObserverEnergy(k.Now(), joules)
}
