package kernel

import (
	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

// Monitor receives the kernel events that power containers hook (§3.3). The
// facility in internal/core implements it; kernels without a facility use
// NopMonitor. All callbacks run synchronously inside the simulation loop.
type Monitor interface {
	// OnInterrupt fires at a counter-overflow interrupt on core c while
	// task t runs there. The monitor samples counters and may adjust the
	// core's duty level.
	OnInterrupt(c *cpu.Core, t *Task)

	// OnSwitch fires at a scheduler context switch on core c. prev is
	// the outgoing task (nil if the core was idle) whose counters must
	// be attributed before the switch; next is the incoming task (nil if
	// the core goes idle) whose policy should be applied to the core.
	OnSwitch(c *cpu.Core, prev, next *Task)

	// OnBind fires when t is about to adopt a new context from a socket
	// segment. If t is running, the monitor must sample its core and
	// attribute the pre-switch counters to the old binding. The kernel
	// applies the new binding after OnBind returns.
	OnBind(t *Task, newCtx Context)

	// OnFork fires after child is created, inheriting parent's binding.
	OnFork(parent, child *Task)

	// OnExit fires when t exits; the monitor releases its container
	// reference (containers free when their reference count drops to
	// zero, per §3.5).
	OnExit(t *Task)

	// OnIO fires when a device transfer completes for t: busy is the
	// device-busy interval and watts the device's draw during it, so the
	// monitor can attribute device energy to t's container.
	OnIO(t *Task, dev DeviceKind, bytes int64, busy sim.Time, watts float64)

	// OnTaskStart fires when a task is first created (spawn or fork).
	OnTaskStart(t *Task)
}

// AuditSink observes socket-layer segment flow for invariant checking
// (internal/audit): every buffered byte must carry exactly one per-segment
// context tag, delivered in FIFO order per buffer (§3.3). buf identifies
// the FIFO the segment travels through — one direction of a connection or
// a listener — and is only ever compared for identity. Direct handoffs to
// an already-waiting receiver report an enqueue immediately followed by a
// deliver with the same seq. Callbacks run synchronously inside the
// simulation loop; a nil sink disables auditing.
type AuditSink interface {
	// OnSockEnqueue fires when a segment enters a buffer (or is handed
	// directly to a waiting receiver). seq is the segment's identity.
	OnSockEnqueue(buf any, seq uint64, bytes int, ctx Context)
	// OnSockDeliver fires when a receiver consumes the segment. ctx is
	// the segment's own tag (not the adopted tag, which differs under
	// the naive single-tag ablation).
	OnSockDeliver(buf any, seq uint64, bytes int, ctx Context)
}

// FaultSurface is the kernel-side fault-injection seam (implemented by
// internal/faults without a package cycle: only cpu/sim types cross it).
// A nil surface — the default — injects nothing; the hot paths then pay
// only a nil check, exactly like the audit sinks.
type FaultSurface interface {
	// WrapCounters corrupts a raw cumulative counter read for the given
	// core, e.g. reducing it modulo a narrow-MSR wraparound modulus.
	WrapCounters(coreID int, raw cpu.Counters) cpu.Counters
	// WrapModulus reports the wraparound modulus WrapCounters applies,
	// so monitors can unwrap deltas; 0 means counters are not wrapped.
	WrapModulus() float64
	// DropInterrupt reports whether this overflow-interrupt delivery is
	// lost. The kernel still clears the overflow latch either way — the
	// hardware condition resets; only the notification is dropped.
	DropInterrupt(coreID int, now sim.Time) bool
	// DropInjectTag reports whether an externally injected segment loses
	// its container tag at the listener boundary.
	DropInjectTag(now sim.Time) bool
	// DropSendTag reports whether an in-flight send loses its tag.
	DropSendTag(now sim.Time) bool
}

// NopMonitor ignores every event.
type NopMonitor struct{}

// OnInterrupt implements Monitor.
func (NopMonitor) OnInterrupt(*cpu.Core, *Task) {}

// OnSwitch implements Monitor.
func (NopMonitor) OnSwitch(*cpu.Core, *Task, *Task) {}

// OnBind implements Monitor.
func (NopMonitor) OnBind(*Task, Context) {}

// OnFork implements Monitor.
func (NopMonitor) OnFork(*Task, *Task) {}

// OnExit implements Monitor.
func (NopMonitor) OnExit(*Task) {}

// OnIO implements Monitor.
func (NopMonitor) OnIO(*Task, DeviceKind, int64, sim.Time, float64) {}

// OnTaskStart implements Monitor.
func (NopMonitor) OnTaskStart(*Task) {}

var _ Monitor = NopMonitor{}
