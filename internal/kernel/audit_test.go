package kernel

import (
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

// sockEvent is one audit-sink callback captured by recordingSink.
type sockEvent struct {
	kind  string // "enq" or "del"
	buf   any
	seq   uint64
	bytes int
	ctx   Context
}

// recordingSink captures the kernel's socket audit stream so tests can
// assert the enqueue/deliver pairing discipline the real auditor relies on.
type recordingSink struct {
	events []sockEvent
}

func (s *recordingSink) OnSockEnqueue(buf any, seq uint64, bytes int, ctx Context) {
	s.events = append(s.events, sockEvent{"enq", buf, seq, bytes, ctx})
}

func (s *recordingSink) OnSockDeliver(buf any, seq uint64, bytes int, ctx Context) {
	s.events = append(s.events, sockEvent{"del", buf, seq, bytes, ctx})
}

// checkPairing verifies that every delivery matches a prior enqueue on the
// same buffer with identical seq/bytes/ctx, and that per-buffer delivery
// order follows enqueue order.
func checkPairing(t *testing.T, events []sockEvent) (enqs, dels int) {
	t.Helper()
	type key struct {
		buf any
		seq uint64
	}
	inflight := map[key]sockEvent{}
	lastDelivered := map[any]uint64{}
	for _, ev := range events {
		switch ev.kind {
		case "enq":
			if _, dup := inflight[key{ev.buf, ev.seq}]; dup {
				t.Fatalf("segment %d enqueued twice on %T", ev.seq, ev.buf)
			}
			inflight[key{ev.buf, ev.seq}] = ev
			enqs++
		case "del":
			enq, ok := inflight[key{ev.buf, ev.seq}]
			if !ok {
				t.Fatalf("segment %d delivered without enqueue on %T", ev.seq, ev.buf)
			}
			delete(inflight, key{ev.buf, ev.seq})
			if enq.bytes != ev.bytes || enq.ctx != ev.ctx {
				t.Fatalf("segment %d mutated in flight: %+v -> %+v", ev.seq, enq, ev)
			}
			if ev.seq <= lastDelivered[ev.buf] {
				t.Fatalf("segment %d delivered after %d on the same buffer",
					ev.seq, lastDelivered[ev.buf])
			}
			lastDelivered[ev.buf] = ev.seq
			dels++
		}
	}
	return enqs, dels
}

// TestSocketAuditStream exercises both socket delivery paths — buffered
// (send before recv) and direct wake (recv blocked before the send) — plus
// listener injection, and checks the audit stream pairs exactly.
func TestSocketAuditStream(t *testing.T) {
	sink := &recordingSink{}
	k := newTestKernel(t, uniSpec, nil)
	k.Audit = sink

	a, b := NewConn()
	lst := NewListener("fe")

	// Receiver blocks first (direct-wake path), then drains two buffered
	// sends, then serves one injected listener request.
	receiver := Script(
		OpRecv{End: b},
		OpRecv{End: b},
		OpRecv{End: b},
		OpRecvListener{L: lst},
		OpCompute{BaseCycles: 1e5, Act: cpu.Activity{IPC: 1}},
	)
	sender := Script(
		OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "req-1" }},
		OpSleep{D: sim.Millisecond}, // let the receiver block: direct wake
		OpSend{End: a, Bytes: 100},
		OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "req-2" }},
		OpSend{End: a, Bytes: 200}, // buffered: receiver still running
		OpSend{End: a, Bytes: 300},
	)
	k.Spawn("recv", receiver, nil)
	k.Spawn("send", sender, nil)
	k.Eng.At(2*sim.Millisecond, func() { k.Inject(lst, 50, "req-3", nil) })
	k.Eng.Run()

	enqs, dels := checkPairing(t, sink.events)
	if enqs != 4 || dels != 4 {
		t.Fatalf("enqueues=%d deliveries=%d, want 4/4 (events: %+v)", enqs, dels, sink.events)
	}
}

// TestSocketAuditDisabledAssignsNoSeq checks the zero-cost path: without a
// sink installed, buffered segments keep seq 0 and no sequence counter
// advances.
func TestSocketAuditDisabledAssignsNoSeq(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	a, _ := NewConn()
	k.Spawn("send", Script(
		OpSend{End: a, Bytes: 10},
		OpSend{End: a, Bytes: 20},
	), nil)
	k.Eng.Run()
	if k.segSeq != 0 {
		t.Fatalf("segment sequence advanced to %d with auditing disabled", k.segSeq)
	}
	for i, seg := range a.sendBuf().segs {
		if seg.seq != 0 {
			t.Fatalf("buffered segment %d has audit seq %d, want 0", i, seg.seq)
		}
	}
}

// TestForkExitTagPropagation drives a three-level fork tree: the root binds
// to a request context, forks a child that forks a grandchild, and then
// rebinds to a different request. The paper's §3.3 rule — children inherit
// the binding at fork time and keep it independently thereafter — means the
// whole subtree stays on the original context while the root moves on.
func TestForkExitTagPropagation(t *testing.T) {
	mon := &recordingMonitor{}
	k := newTestKernel(t, uniSpec, mon)

	var childCtx, grandCtx, rootCtxAfter Context
	grand := Script(
		OpCall{Fn: func(k *Kernel, t *Task) { grandCtx = t.Ctx }},
		OpCompute{BaseCycles: 1e5, Act: cpu.Activity{IPC: 1}},
	)
	child := Script(
		OpCall{Fn: func(k *Kernel, t *Task) { childCtx = t.Ctx }},
		OpFork{Name: "grand", Prog: grand},
		OpWaitChild{},
	)
	root := Script(
		OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "req-A" }},
		OpFork{Name: "child", Prog: child},
		// Rebind the root while the subtree still runs on req-A.
		OpCall{Fn: func(k *Kernel, t *Task) { k.Rebind(t, "req-B") }},
		OpWaitChild{},
		OpCall{Fn: func(k *Kernel, t *Task) { rootCtxAfter = t.Ctx }},
	)
	k.Spawn("root", root, nil)
	k.Eng.Run()

	if childCtx != "req-A" || grandCtx != "req-A" {
		t.Fatalf("subtree contexts = %v/%v, want req-A/req-A", childCtx, grandCtx)
	}
	if rootCtxAfter != "req-B" {
		t.Fatalf("root context after rebind = %v, want req-B", rootCtxAfter)
	}
	if mon.forks != 2 {
		t.Fatalf("forks = %d, want 2", mon.forks)
	}
	// All three tasks exit: root, child, grandchild.
	if mon.exits != 3 {
		t.Fatalf("exits = %d, want 3", mon.exits)
	}
}
