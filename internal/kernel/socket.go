package kernel

// This file implements the socket layer that request contexts propagate
// through (§3.3). Every buffered message segment carries the sender's
// context tag; a receiver inherits the tag of the segment it actually
// reads. The paper explains why per-segment tagging matters on persistent
// high-throughput connections: with a single per-socket tag, a new
// request's message arriving before the previous message is read would make
// the receiver inherit the wrong context. The kernel supports the naive
// scheme too (PerSegmentTagging=false) as an ablation.

// loseTag strips a segment's container tag, modelling the fault where the
// tagging path misses a transfer (a lost hook, a truncated header). The
// untagged segment flows like any other — its receiver simply binds to the
// background context, exactly as the paper's facility would account an
// untagged kernel path. Kept here so the socket layer owns what "no tag"
// means; injection decisions live behind kernel.FaultSurface.
func loseTag(Context) Context { return nil }

// segment is one buffered message.
type segment struct {
	bytes   int
	ctx     Context
	payload any
	// seq is an audit-only identity for the segment, assigned at enqueue
	// time when an AuditSink is installed (0 otherwise).
	seq uint64
}

// sockBuf is one direction of a connection: a FIFO of tagged segments plus
// the tasks blocked reading from it.
type sockBuf struct {
	segs    []segment
	lastCtx Context // naive mode: single tag, overwritten by each send
	waiting []*Task
}

func (b *sockBuf) empty() bool { return len(b.segs) == 0 }

// pop removes the head segment; callers must check empty first.
func (b *sockBuf) pop() segment {
	s := b.segs[0]
	b.segs = b.segs[1:]
	return s
}

// Conn is a bidirectional connection between two endpoints, typically
// persistent across many requests (e.g. an httpd worker's connection to its
// MySQL thread).
type Conn struct {
	ab, ba sockBuf
}

// Endpoint is one side of a Conn.
type Endpoint struct {
	conn *Conn
	side int // 0 = a, 1 = b
}

// Peer returns the opposite endpoint.
func (e *Endpoint) Peer() *Endpoint {
	return &Endpoint{conn: e.conn, side: 1 - e.side}
}

// sendBuf is the buffer this endpoint writes into.
func (e *Endpoint) sendBuf() *sockBuf {
	if e.side == 0 {
		return &e.conn.ab
	}
	return &e.conn.ba
}

// recvBuf is the buffer this endpoint reads from.
func (e *Endpoint) recvBuf() *sockBuf {
	if e.side == 0 {
		return &e.conn.ba
	}
	return &e.conn.ab
}

// Buffered returns the number of unread segments waiting at this endpoint.
func (e *Endpoint) Buffered() int { return len(e.recvBuf().segs) }

// NewConn creates a connection and returns its two endpoints.
func NewConn() (a, b *Endpoint) {
	c := &Conn{}
	return &Endpoint{conn: c, side: 0}, &Endpoint{conn: c, side: 1}
}

// Listener is an external message source: the boundary where client
// requests (or cross-machine hops) enter a machine. Injected messages carry
// the context of the request they belong to.
type Listener struct {
	Name    string
	segs    []segment
	waiting []*Task
}

// NewListener returns a listener with the given diagnostic name.
func NewListener(name string) *Listener { return &Listener{Name: name} }

// Pending returns the number of undelivered messages.
func (l *Listener) Pending() int { return len(l.segs) }

// QueuedWaiters returns the number of tasks blocked on the listener.
func (l *Listener) QueuedWaiters() int { return len(l.waiting) }

// NewPipe creates a unidirectional IPC channel — the pipe/IPC propagation
// path of §3.3 — and returns its read and write ends. Pipes share the
// socket layer's per-segment context tagging: a reader inherits the request
// context of the specific message it consumes.
func NewPipe() (r, w *Endpoint) {
	a, b := NewConn()
	// b writes, a reads: expose only that direction.
	return a, b
}
