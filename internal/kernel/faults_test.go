package kernel

import (
	"math"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/faults"
	"powercontainers/internal/sim"
)

// surface builds a kernel fault surface from counter/socket configs.
func surface(seed uint64, c *faults.CounterFaults, s *faults.SocketFaults) *faults.KernelSurface {
	return (&faults.Plan{Seed: seed, Counter: c, Socket: s}).KernelSurface()
}

// TestReadCountersAppliesWrapModulus: with a counter-fault surface
// installed, ReadCounters sees register values wrapped at the modulus while
// the underlying core counters stay exact.
func TestReadCountersAppliesWrapModulus(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	k.Faults = surface(1, &faults.CounterFaults{WrapEvery: 1e6}, nil)
	k.Spawn("w", Script(OpCompute{BaseCycles: 5e6, Act: cpu.Activity{IPC: 1}}), nil)
	k.Eng.Run()

	raw := k.Cores[0].Counters()
	if raw.Cycles < 4e6 {
		t.Fatalf("raw cycles = %g, task did not run", raw.Cycles)
	}
	got := k.ReadCounters(0)
	if got.Cycles >= 1e6 || got.Cycles != math.Mod(raw.Cycles, 1e6) {
		t.Fatalf("wrapped cycles = %g, want %g", got.Cycles, math.Mod(raw.Cycles, 1e6))
	}
	if w := k.CounterWrapModulus(); w != 1e6 {
		t.Fatalf("modulus = %g, want 1e6", w)
	}

	// Without a surface, ReadCounters is the identity read.
	k2 := newTestKernel(t, uniSpec, nil)
	k2.Spawn("w", Script(OpCompute{BaseCycles: 5e6, Act: cpu.Activity{IPC: 1}}), nil)
	k2.Eng.Run()
	if k2.ReadCounters(0) != k2.Cores[0].Counters() {
		t.Fatal("identity read changed counters without faults")
	}
	if k2.CounterWrapModulus() != 0 {
		t.Fatal("modulus non-zero without faults")
	}
}

// TestLostInterruptsSuppressMonitorDelivery: a certain-loss fault plan must
// suppress every overflow interrupt delivery without wedging the core — the
// overflow latch is still consumed so execution completes normally.
func TestLostInterruptsSuppressMonitorDelivery(t *testing.T) {
	run := func(lossP float64) (int, sim.Time) {
		mon := &recordingMonitor{}
		k := newTestKernel(t, uniSpec, mon)
		k.Cores[0].SetOverflowThreshold(1e6)
		if lossP > 0 {
			k.Faults = surface(2, &faults.CounterFaults{LostInterruptP: lossP}, nil)
		}
		k.Spawn("w", Script(OpCompute{BaseCycles: 10e6, Act: cpu.Activity{IPC: 1}}), nil)
		k.Eng.Run()
		return mon.interrupts, k.Eng.Now()
	}
	cleanIRQs, cleanEnd := run(0)
	if cleanIRQs == 0 {
		t.Fatal("baseline run delivered no overflow interrupts")
	}
	lostIRQs, lostEnd := run(1)
	if lostIRQs != 0 {
		t.Fatalf("certain interrupt loss still delivered %d interrupts", lostIRQs)
	}
	if lostEnd != cleanEnd {
		t.Fatalf("suppressed interrupts changed execution: end %s vs %s",
			sim.FormatTime(lostEnd), sim.FormatTime(cleanEnd))
	}
}

// TestInjectTagLossUnbindsRequest: certain tag loss at the listener boundary
// delivers the message with no context, so the serving task binds to nil
// (background accounting) instead of the request.
func TestInjectTagLossUnbindsRequest(t *testing.T) {
	run := func(lossP float64) Context {
		k := newTestKernel(t, uniSpec, nil)
		if lossP > 0 {
			k.Faults = surface(3, nil, &faults.SocketFaults{InjectTagLossP: lossP})
		}
		l := NewListener("in")
		var got Context
		var step int
		k.Spawn("server", FuncProgram(func(k *Kernel, t *Task) Op {
			step++
			switch step {
			case 1:
				return OpRecvListener{L: l}
			case 2:
				got = t.Ctx
				return OpCompute{BaseCycles: 1000, Act: cpu.Activity{}}
			}
			return nil
		}), nil)
		k.Inject(l, 100, "req", nil)
		k.Eng.Run()
		return got
	}
	if got := run(0); got != "req" {
		t.Fatalf("baseline binding = %v, want req", got)
	}
	if got := run(1); got != nil {
		t.Fatalf("lost tag still bound %v, want nil (background)", got)
	}
}

// TestSendTagLossIsDeterministic: partial send-tag loss on a connection
// produces the same loss pattern on every same-seed run, and the lossy
// segments arrive untagged. (No auditor is attached here: mid-connection
// tag loss deliberately breaks tag conservation — that is the fault being
// injected.)
func TestSendTagLossIsDeterministic(t *testing.T) {
	const sends = 20
	run := func() []bool {
		k := newTestKernel(t, uniSpec, nil)
		k.PerSegmentTagging = true
		k.Faults = surface(7, nil, &faults.SocketFaults{SendTagLossP: 0.5})
		a, b := NewConn()
		// Script the sends explicitly so each carries the request context.
		var ops []Op
		ops = append(ops, OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "req" }})
		for i := 0; i < sends; i++ {
			ops = append(ops, OpSend{End: a, Bytes: 10})
		}
		k.Spawn("sender", Script(ops...), nil)
		var pattern []bool
		var step int
		k.Spawn("receiver", FuncProgram(func(k *Kernel, t *Task) Op {
			step++
			if step == 1 {
				return OpSleep{D: sim.Millisecond}
			}
			if step%2 == 0 {
				if len(pattern) >= sends {
					return nil
				}
				return OpRecv{End: b}
			}
			pattern = append(pattern, t.Ctx == nil)
			return OpCompute{BaseCycles: 100, Act: cpu.Activity{}}
		}), nil)
		k.Eng.Run()
		return pattern
	}
	first := run()
	if len(first) != sends {
		t.Fatalf("received %d segments, want %d", len(first), sends)
	}
	lost := 0
	for _, l := range first {
		if l {
			lost++
		}
	}
	if lost == 0 || lost == sends {
		t.Fatalf("50%% send-tag loss lost %d of %d — injection inert or total", lost, sends)
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same-seed loss patterns diverge at segment %d", i)
		}
	}
}
