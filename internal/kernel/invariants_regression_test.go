package kernel

// Regression pin for quick.Check input 0x7cdd: that seed once generated a
// sleep/fork-only task mix with zero total busy time, failing the
// conservation check in TestSchedulerInvariants. randomProgram now anchors
// every top-level task with a compute op; this test keeps the exact input
// in the suite so the fix cannot silently regress.

import (
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

func TestSchedulerInvariantsSeed7cdd(t *testing.T) {
	seed := uint16(0x7cdd)
	rng := sim.NewRand(uint64(seed) + 1)
	eng := sim.NewEngine()
	mon := newTrackingMonitor()
	k, err := New("inv", cpu.SandyBridge, testProfile, eng, mon)
	if err != nil {
		t.Fatal(err)
	}
	mon.k = k
	for _, c := range k.Cores {
		c.SetOverflowThreshold(c.FreqHz * 1e-3)
	}
	nTasks := 2 + rng.Intn(10)
	for i := 0; i < nTasks; i++ {
		ctx := Context(i % 3)
		k.Spawn("t", randomProgram(rng, 0, nil), ctx)
	}
	eng.Run()

	for _, task := range k.Tasks() {
		if task.State() != TaskDead {
			t.Errorf("task %v not dead", task)
		}
	}
	if k.BusyCores() != 0 {
		t.Error("busy cores after drain")
	}
	for c := range k.Cores {
		if !k.CoreIdle(c) {
			t.Errorf("core %d not idle", c)
		}
	}
	var total sim.Time
	for _, ns := range mon.busyNs {
		if ns < 0 {
			t.Error("negative busy time")
		}
		total += ns
	}
	if total <= 0 {
		t.Errorf("total busy time %d not positive", total)
	}
	bound := sim.Time(len(k.Cores)) * eng.Now()
	if total > bound {
		t.Errorf("total busy %d exceeds bound %d", total, bound)
	}
}
