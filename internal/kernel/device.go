package kernel

import (
	"powercontainers/internal/sim"
)

// DeviceKind identifies an I/O device class.
type DeviceKind int

const (
	// DeviceDisk is the machine's disk subsystem.
	DeviceDisk DeviceKind = iota
	// DeviceNet is the machine's network interface.
	DeviceNet
)

func (d DeviceKind) String() string {
	if d == DeviceDisk {
		return "disk"
	}
	return "net"
}

// Device is a synchronous FIFO I/O device with fixed bandwidth, per-request
// latency, and a power draw while busy. Requests from concurrent tasks
// serialize; the requesting task blocks until its transfer finishes. Device
// energy is attributed to the requesting task's container via Monitor.OnIO,
// reflecting the paper's statement that the OS identifies the requests
// responsible for I/O operations.
type Device struct {
	Kind        DeviceKind
	BytesPerSec float64
	LatencyNs   sim.Time
	BusyWatts   float64

	freeAt sim.Time
}

// NewDisk returns a disk modeled on a 7200 RPM SATA drive.
func NewDisk(busyWatts float64) *Device {
	return &Device{
		Kind:        DeviceDisk,
		BytesPerSec: 120e6,
		LatencyNs:   4 * sim.Millisecond,
		BusyWatts:   busyWatts,
	}
}

// NewNIC returns a gigabit network interface.
func NewNIC(busyWatts float64) *Device {
	return &Device{
		Kind:        DeviceNet,
		BytesPerSec: 118e6,
		LatencyNs:   80 * sim.Microsecond,
		BusyWatts:   busyWatts,
	}
}

// schedule reserves device time for a transfer of the given size starting
// no earlier than now, returning the busy interval [start, done).
func (d *Device) schedule(now sim.Time, bytes int64) (start, done sim.Time) {
	start = now
	if d.freeAt > start {
		start = d.freeAt
	}
	busy := d.LatencyNs + sim.Time(float64(bytes)/d.BytesPerSec*float64(sim.Second))
	done = start + busy
	d.freeAt = done
	return start, done
}

// Utilization returns the fraction of [t0, t1) the device was busy,
// approximated from its reservation horizon; experiment harnesses use it
// for sanity checks only.
func (d *Device) Busy() sim.Time { return d.freeAt }
