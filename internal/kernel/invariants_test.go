package kernel

import (
	"testing"
	"testing/quick"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

// trackingMonitor accumulates per-binding busy time for conservation checks.
type trackingMonitor struct {
	NopMonitor
	k        *Kernel
	lastSeen map[int]sim.Time // core → period start
	busyNs   map[Context]sim.Time
}

func newTrackingMonitor() *trackingMonitor {
	return &trackingMonitor{lastSeen: map[int]sim.Time{}, busyNs: map[Context]sim.Time{}}
}

func (m *trackingMonitor) OnSwitch(c *cpu.Core, prev, next *Task) {
	now := m.k.Now()
	if prev != nil {
		m.busyNs[prev.Ctx] += now - m.lastSeen[c.ID]
	}
	if next != nil {
		m.lastSeen[c.ID] = now
	}
}

// randomProgram builds a finite random task program from the generator.
func randomProgram(rng *sim.Rand, depth int, conns []*Endpoint) Program {
	var ops []Op
	n := 1 + rng.Intn(5)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0, 1, 2:
			ops = append(ops, OpCompute{
				BaseCycles: float64(1+rng.Intn(2000)) * 1e3,
				Act:        cpu.Activity{IPC: 0.5 + rng.Float64(), MemPC: rng.Float64() * 0.005},
			})
		case 3:
			ops = append(ops, OpSleep{D: sim.Time(rng.Intn(int(2 * sim.Millisecond)))})
		case 4:
			if depth < 2 {
				ops = append(ops, OpFork{Name: "child", Prog: randomProgram(rng, depth+1, conns)})
				ops = append(ops, OpWaitChild{})
			}
		case 5:
			if len(conns) > 0 {
				e := conns[rng.Intn(len(conns))]
				ops = append(ops, OpSend{End: e, Bytes: 64})
			}
		}
	}
	if depth == 0 {
		// A sleep/fork-only mix is legal but accrues zero busy time,
		// which would make the busy-time conservation check vacuous
		// (quick input 0x7cdd generated exactly that); anchor every
		// top-level task with a small compute op.
		ops = append(ops, OpCompute{BaseCycles: 1e3, Act: cpu.Activity{IPC: 1}})
	}
	return Script(ops...)
}

// TestSchedulerInvariants drives random task mixes and checks structural
// invariants: every finite task dies, chip busy accounting stays in range,
// and total per-binding busy time matches wall-clock core occupancy.
func TestSchedulerInvariants(t *testing.T) {
	f := func(seed uint16) bool {
		rng := sim.NewRand(uint64(seed) + 1)
		eng := sim.NewEngine()
		mon := newTrackingMonitor()
		k, err := New("inv", cpu.SandyBridge, testProfile, eng, mon)
		if err != nil {
			t.Fatal(err)
		}
		mon.k = k
		// Overflow interrupts active, as in production.
		for _, c := range k.Cores {
			c.SetOverflowThreshold(c.FreqHz * 1e-3)
		}

		nTasks := 2 + rng.Intn(10)
		for i := 0; i < nTasks; i++ {
			ctx := Context(i % 3)
			k.Spawn("t", randomProgram(rng, 0, nil), ctx)
		}
		eng.Run()

		// 1. All tasks terminated.
		for _, task := range k.Tasks() {
			if task.State() != TaskDead {
				t.Logf("task %v not dead", task)
				return false
			}
		}
		// 2. No core busy after drain; chip accounting consistent.
		if k.BusyCores() != 0 {
			return false
		}
		for c := range k.Cores {
			if !k.CoreIdle(c) {
				return false
			}
		}
		// 3. Conservation: Σ per-binding busy time == Σ task busy time
		// computed from recorded package energy at known power... here:
		// busy time must be positive and bounded by cores × makespan.
		var total sim.Time
		for _, ns := range mon.busyNs {
			if ns < 0 {
				return false
			}
			total += ns
		}
		if total <= 0 {
			return false
		}
		bound := sim.Time(len(k.Cores)) * eng.Now()
		return total <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEnergyConservation checks that the ground-truth recorder's package
// energy equals busy-time × known constant power for a constant-activity
// workload, regardless of how the scheduler slices it.
func TestEnergyConservation(t *testing.T) {
	f := func(seed uint16) bool {
		rng := sim.NewRand(uint64(seed) + 7)
		eng := sim.NewEngine()
		k, err := New("cons", cpu.SandyBridge, testProfile, eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		act := cpu.Activity{IPC: 1}
		perCorePower := testProfile.CorePowerW(act, 1)

		nTasks := 1 + rng.Intn(8)
		var totalCycles float64
		for i := 0; i < nTasks; i++ {
			cycles := float64(1+rng.Intn(5000)) * 1e3
			totalCycles += cycles
			k.Spawn("t", Script(OpCompute{BaseCycles: cycles, Act: act}), nil)
		}
		eng.Run()
		k.Rec.FlushUntil(eng.Now() + sim.Millisecond)

		busySec := totalCycles / cpu.SandyBridge.FreqHz
		wantCore := perCorePower * busySec
		// Maintenance energy is bounded by chip power × makespan.
		series := k.Rec.PkgActiveSeries()
		var gotTotal float64
		for i := 0; i < series.Len(); i++ {
			gotTotal += series.Bucket(i)
		}
		// Tolerance covers WallFor's per-segment whole-nanosecond ceiling.
		maintBound := testProfile.ChipMaintW * float64(eng.Now()) / float64(sim.Second)
		if gotTotal < wantCore-1e-7 {
			t.Logf("recorded %.6f J below core energy %.6f J", gotTotal, wantCore)
			return false
		}
		if gotTotal > wantCore+maintBound+1e-7 {
			t.Logf("recorded %.6f J above core+maintenance bound %.6f J", gotTotal, wantCore+maintBound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCounterMonotonicity: hardware counters never decrease.
func TestCounterMonotonicity(t *testing.T) {
	eng := sim.NewEngine()
	k, err := New("mono", cpu.SandyBridge, testProfile, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(99)
	for i := 0; i < 6; i++ {
		k.Spawn("t", randomProgram(rng, 0, nil), nil)
	}
	prev := make([]cpu.Counters, len(k.Cores))
	for eng.Pending() > 0 {
		eng.Step()
		for i, c := range k.Cores {
			cur := c.Counters()
			if cur.Cycles < prev[i].Cycles || cur.Instructions < prev[i].Instructions ||
				cur.Float < prev[i].Float || cur.Cache < prev[i].Cache || cur.Mem < prev[i].Mem {
				t.Fatalf("core %d counters decreased: %v -> %v", i, prev[i], cur)
			}
			prev[i] = cur
		}
	}
}
