package server

import (
	"fmt"

	"powercontainers/internal/core"
	"powercontainers/internal/kernel"
	"powercontainers/internal/sim"
	"powercontainers/internal/stats"
)

// requestBytes is the nominal wire size of a request message.
const requestBytes = 600

// LoadGen drives a deployment with client requests, creating a power
// container per request and recording completions.
type LoadGen struct {
	K   *kernel.Kernel
	Fac *core.Facility
	Dep *Deployment

	completed []*Request
	inFlight  int

	// OnComplete, when set, runs for every finished request (cluster
	// experiments use it to chain dispatch decisions).
	OnComplete func(*Request)

	// TraceRequests enables request-flow tracing on every container the
	// generator creates (the Figure 4 capture).
	TraceRequests bool

	// PowerTargetFor, when set, assigns a per-request power target (W)
	// by request type at container creation — the request-level control
	// policies of §3.3. Return 0 for no target.
	PowerTargetFor func(reqType string) float64

	// Clients, when set, assigns each request without an explicit
	// Client to a principal drawn from the pool, enabling per-client
	// energy accounting.
	Clients *ClientPool

	// ServiceFor, when set, files each request's container under a
	// hierarchy node by request type: return the tenant and service
	// names, or an empty tenant for a flat container. Requires the
	// facility to have a hierarchy attached when a tenant is returned.
	ServiceFor func(reqType string) (tenant, service string)

	stopped bool
}

// NewLoadGen returns a generator for the deployment on the facility's
// machine.
func NewLoadGen(k *kernel.Kernel, fac *core.Facility, dep *Deployment) *LoadGen {
	if fac != nil && fac.K != k {
		panic("server: facility attached to a different kernel")
	}
	return &LoadGen{K: k, Fac: fac, Dep: dep}
}

// Completed returns the finished requests in completion order.
func (g *LoadGen) Completed() []*Request { return g.completed }

// InjectedExternally merges a request completed through another generator
// into this generator's completion records, for unified reporting.
func (g *LoadGen) InjectedExternally(r *Request) { g.completed = append(g.completed, r) }

// InFlight returns the number of injected-but-unfinished requests.
func (g *LoadGen) InFlight() int { return g.inFlight }

// Stop prevents any further injections from pending arrival events.
func (g *LoadGen) Stop() { g.stopped = true }

// InjectRequest submits one request now and returns it.
func (g *LoadGen) InjectRequest() *Request {
	req := g.Dep.NewRequest()
	return g.InjectPrepared(req, nil)
}

// InjectPrepared submits a pre-built request, calling extraDone (if any)
// after the standard completion bookkeeping.
func (g *LoadGen) InjectPrepared(req *Request, extraDone func(*Request)) *Request {
	if req.Client == "" && g.Clients != nil {
		req.Client = g.Clients.Draw()
	}
	if req.Cont == nil && g.Fac != nil {
		var tenant, service string
		if g.ServiceFor != nil {
			tenant, service = g.ServiceFor(req.Type)
		}
		if tenant != "" {
			req.Cont = g.Fac.NewContainerIn(tenant, service, req.Type)
		} else {
			req.Cont = g.Fac.NewContainer(req.Type)
		}
		req.Cont.Client = req.Client
		if g.TraceRequests {
			req.Cont.EnableTrace()
		}
		if g.PowerTargetFor != nil {
			req.Cont.PowerTargetW = g.PowerTargetFor(req.Type)
		}
	}
	req.Arrive = g.K.Now()
	g.inFlight++
	env := &Envelope{Req: req}
	env.Done = func(k *kernel.Kernel, t *kernel.Task) {
		req.Done = k.Now()
		if req.Cont != nil {
			req.Cont.Finish(k.Now())
		}
		g.inFlight--
		g.completed = append(g.completed, req)
		if extraDone != nil {
			extraDone(req)
		}
		if g.OnComplete != nil {
			g.OnComplete(req)
		}
	}
	g.K.Inject(g.Dep.Entry, requestBytes, req.Cont, env)
	return req
}

// RunOpenLoop schedules Poisson arrivals at ratePerSec until the given
// virtual time. Call before driving the engine.
func (g *LoadGen) RunOpenLoop(ratePerSec float64, until sim.Time, rng *sim.Rand) {
	if ratePerSec <= 0 {
		panic(fmt.Sprintf("server: non-positive arrival rate %g", ratePerSec))
	}
	meanGapNs := float64(sim.Second) / ratePerSec
	var arrive func()
	arrive = func() {
		if g.stopped || g.K.Now() >= until {
			return
		}
		g.InjectRequest()
		gap := sim.Time(rng.ExpFloat64(meanGapNs))
		if gap < 1 {
			gap = 1
		}
		g.K.Eng.After(gap, arrive)
	}
	g.K.Eng.After(sim.Time(rng.ExpFloat64(meanGapNs)), arrive)
}

// RunClosedLoop keeps `clients` requests outstanding (zero think time)
// until the given virtual time: the paper's "peak load" condition where the
// server stays fully utilized.
func (g *LoadGen) RunClosedLoop(clients int, until sim.Time) {
	if clients <= 0 {
		panic("server: closed loop needs at least one client")
	}
	var next func(*Request)
	next = func(*Request) {
		if g.stopped || g.K.Now() >= until {
			return
		}
		req := g.Dep.NewRequest()
		g.InjectPrepared(req, next)
	}
	for i := 0; i < clients; i++ {
		next(nil)
	}
}

// ResponseTimes returns a sample of completed response times in
// milliseconds, optionally filtered by request type prefix.
func (g *LoadGen) ResponseTimes(typePrefix string) *stats.Sample {
	var s stats.Sample
	for _, r := range g.completed {
		if !r.Finished() {
			continue
		}
		if typePrefix != "" && !hasPrefix(r.Type, typePrefix) {
			continue
		}
		s.Observe(float64(r.ResponseTime()) / float64(sim.Millisecond))
	}
	return &s
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// Throughput returns completed requests per second over [t0, t1).
func (g *LoadGen) Throughput(t0, t1 sim.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	n := 0
	for _, r := range g.completed {
		if r.Done >= t0 && r.Done < t1 {
			n++
		}
	}
	return float64(n) / (float64(t1-t0) / float64(sim.Second))
}
