package server

import (
	"math"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

var quadSpec = cpu.MachineSpec{
	Name: "Quad", Chips: 1, CoresPerChip: 4, FreqHz: 1e9, DutyLevels: 8,
}

var testProfile = power.TrueProfile{
	MachineIdleW: 40, PkgIdleW: 2, ChipMaintW: 5,
	CoreW: 8, InsW: 2, FloatW: 1, CacheW: 100, MemW: 200,
	DiskW: 1.7, NetW: 5.8,
}

func newRig(t *testing.T) (*kernel.Kernel, *core.Facility) {
	t.Helper()
	eng := sim.NewEngine()
	k, err := kernel.New("test", quadSpec, testProfile, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	coeff := model.Coefficients{Core: 8, Ins: 2, Chip: 5, IncludesChipShare: true}
	fac := core.Attach(k, coeff, core.Config{Approach: core.ApproachChipShare})
	return k, fac
}

// echoDeployment serves requests with a fixed compute burst.
func echoDeployment(k *kernel.Kernel, burst float64) *Deployment {
	entry := kernel.NewListener("echo")
	pool := NewEntryPool(k, "echo", 8, entry, func(int) Handler {
		return func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
			env := payload.(*Envelope)
			_ = env
			return []kernel.Op{kernel.OpCompute{BaseCycles: burst, Act: cpu.Activity{IPC: 1}}}
		}
	})
	n := 0
	return &Deployment{
		Entry: entry,
		NewRequest: func() *Request {
			n++
			return &Request{Type: "echo"}
		},
		MeanServiceSec: burst / 1e9,
		Pools:          []*Pool{pool},
	}
}

func TestEntryPoolServesAndCompletes(t *testing.T) {
	k, fac := newRig(t)
	dep := echoDeployment(k, 2e6) // 2 ms per request
	gen := NewLoadGen(k, fac, dep)
	req := gen.InjectRequest()
	k.Eng.Run()

	if !req.Finished() {
		t.Fatal("request did not complete")
	}
	if req.ResponseTime() < 2*sim.Millisecond {
		t.Fatalf("response time %v below service time", req.ResponseTime())
	}
	if req.Cont == nil || req.Cont.EnergyJ() <= 0 {
		t.Fatal("no container energy attributed")
	}
	if req.Cont.End <= req.Cont.Start {
		t.Fatal("container not finished")
	}
	if gen.InFlight() != 0 {
		t.Fatalf("in flight = %d", gen.InFlight())
	}
}

func TestWorkerUnbindsBetweenRequests(t *testing.T) {
	k, fac := newRig(t)
	dep := echoDeployment(k, 1e6)
	gen := NewLoadGen(k, fac, dep)
	gen.InjectRequest()
	k.Eng.Run()
	for _, task := range k.Tasks() {
		if task.Name == "echo" && task.Ctx != nil {
			t.Fatal("worker still bound after request completion")
		}
	}
}

func TestClosedLoopKeepsClientsOutstanding(t *testing.T) {
	k, fac := newRig(t)
	dep := echoDeployment(k, 5e6)
	gen := NewLoadGen(k, fac, dep)
	gen.RunClosedLoop(6, 200*sim.Millisecond)
	k.Eng.RunUntil(100 * sim.Millisecond)
	if got := gen.InFlight(); got != 6 {
		t.Fatalf("in flight = %d, want 6", got)
	}
	k.Eng.Run()
	// 4 cores × 200 ms / 5 ms ≈ 160 completions possible; with 6 clients
	// the server is saturated.
	if n := len(gen.Completed()); n < 120 {
		t.Fatalf("completed %d, want ≥120", n)
	}
}

func TestOpenLoopApproximatesRate(t *testing.T) {
	k, fac := newRig(t)
	dep := echoDeployment(k, 1e6)
	gen := NewLoadGen(k, fac, dep)
	rng := sim.NewRand(3)
	gen.RunOpenLoop(200, 5*sim.Second, rng)
	k.Eng.Run()
	got := gen.Throughput(0, 5*sim.Second)
	if math.Abs(got-200)/200 > 0.1 {
		t.Fatalf("throughput %.1f req/s, want ≈200", got)
	}
}

func TestResponseTimesFilterByPrefix(t *testing.T) {
	k, fac := newRig(t)
	dep := echoDeployment(k, 1e6)
	gen := NewLoadGen(k, fac, dep)
	gen.InjectRequest()
	k.Eng.Run()
	if s := gen.ResponseTimes("echo"); s.Count() != 1 {
		t.Fatalf("echo responses = %d", s.Count())
	}
	if s := gen.ResponseTimes("other"); s.Count() != 0 {
		t.Fatalf("other responses = %d", s.Count())
	}
}

func TestAuxWorkerRoundTrip(t *testing.T) {
	k, fac := newRig(t)
	_ = fac
	a, b := kernel.NewConn()
	NewAuxWorker(k, "db", b, func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
		n := payload.(int)
		return []kernel.Op{
			kernel.OpCompute{BaseCycles: float64(n), Act: cpu.Activity{IPC: 1}},
			kernel.OpSend{End: b, Bytes: 64, Payload: n * 2},
		}
	})
	var got any
	k.Spawn("client", kernel.Script(
		kernel.OpSend{End: a, Bytes: 64, Payload: 1000},
		kernel.OpRecv{End: a},
		kernel.OpCall{Fn: func(k *kernel.Kernel, t *kernel.Task) { got = t.LastRecv }},
	), nil)
	k.Eng.Run()
	if got != 2000 {
		t.Fatalf("aux reply payload = %v, want 2000", got)
	}
}

func TestLoadGenStop(t *testing.T) {
	k, fac := newRig(t)
	dep := echoDeployment(k, 1e6)
	gen := NewLoadGen(k, fac, dep)
	gen.RunOpenLoop(1000, 10*sim.Second, sim.NewRand(1))
	k.Eng.RunUntil(100 * sim.Millisecond)
	gen.Stop()
	before := len(gen.Completed()) + gen.InFlight()
	k.Eng.RunUntil(500 * sim.Millisecond)
	after := len(gen.Completed()) + gen.InFlight()
	if after > before {
		t.Fatalf("injections continued after Stop: %d -> %d", before, after)
	}
}

func TestInjectPreparedExtraDone(t *testing.T) {
	k, fac := newRig(t)
	dep := echoDeployment(k, 1e6)
	gen := NewLoadGen(k, fac, dep)
	called := false
	gen.InjectPrepared(&Request{Type: "echo"}, func(r *Request) { called = true })
	k.Eng.Run()
	if !called {
		t.Fatal("extraDone not invoked")
	}
}
