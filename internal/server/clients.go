package server

import (
	"fmt"
	"math"

	"powercontainers/internal/sim"
)

// ClientPool draws request principals with a Zipf-like popularity skew, as
// real multi-tenant traffic does: a few heavy clients dominate, with a long
// tail of occasional ones. Per-client energy accounting (§1) exists exactly
// to expose that skew.
type ClientPool struct {
	names   []string
	weights []float64
	rng     *sim.Rand
}

// NewClientPool builds a pool of n clients ("client-000"...) with Zipf
// exponent s (≈0.9 is typical web-tenant skew).
func NewClientPool(n int, s float64, rng *sim.Rand) *ClientPool {
	if n <= 0 {
		panic("server: client pool needs at least one client")
	}
	p := &ClientPool{rng: rng}
	for i := 0; i < n; i++ {
		p.names = append(p.names, fmt.Sprintf("client-%03d", i))
		p.weights = append(p.weights, 1/math.Pow(float64(i+1), s))
	}
	return p
}

// Draw returns the next request's client.
func (p *ClientPool) Draw() string {
	return p.names[p.rng.Pick(p.weights)]
}

// Names lists the pool's clients in rank order.
func (p *ClientPool) Names() []string { return append([]string(nil), p.names...) }
