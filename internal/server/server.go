// Package server provides the multi-stage server scaffolding the paper's
// workloads run on: worker pools serving a listener or persistent
// connections, request envelopes that tie a message flow to its power
// container, and open-loop/closed-loop load generation.
package server

import (
	"fmt"

	"powercontainers/internal/core"
	"powercontainers/internal/kernel"
	"powercontainers/internal/sim"
)

// Request is one client request's lifecycle record.
type Request struct {
	// Type is the request class (e.g. "rsa/2048", "vosao/read").
	Type string
	// Client identifies the requesting principal (account, user, app);
	// containers inherit it for client-oriented accounting.
	Client string
	// Payload carries workload-specific parameters to the handlers.
	Payload any
	// Cont is the request's power container.
	Cont *core.Container
	// Arrive and Done bound the request's residence in the server.
	Arrive, Done sim.Time
}

// ResponseTime returns the request's server residence time (0 if unfinished).
func (r *Request) ResponseTime() sim.Time {
	if r.Done <= r.Arrive {
		return 0
	}
	return r.Done - r.Arrive
}

// Finished reports whether the request completed.
func (r *Request) Finished() bool { return r.Done > r.Arrive }

// Envelope is the payload injected into an entry listener: the request plus
// the completion callback installed by the load generator.
type Envelope struct {
	Req  *Request
	Done func(k *kernel.Kernel, t *kernel.Task)
}

// Handler builds the op sequence serving one received message. For entry
// pools the payload is *Envelope; for auxiliary pools it is whatever the
// upstream stage sent.
type Handler func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op

// entryWorker serves an entry listener: receive a request envelope, run the
// handler's ops, signal completion, repeat.
type entryWorker struct {
	l       *kernel.Listener
	handler Handler
	pending []kernel.Op
	waiting bool
}

func (w *entryWorker) Next(k *kernel.Kernel, t *kernel.Task) kernel.Op {
	for {
		if len(w.pending) > 0 {
			op := w.pending[0]
			w.pending = w.pending[1:]
			return op
		}
		if !w.waiting {
			w.waiting = true
			return kernel.OpRecvListener{L: w.l}
		}
		// Recv completed: build the request's ops plus completion.
		w.waiting = false
		env, ok := t.LastRecv.(*Envelope)
		if !ok {
			panic(fmt.Sprintf("server: entry worker %s received %T, want *Envelope", t.Name, t.LastRecv))
		}
		w.pending = w.handler(k, t, env)
		if env.Done != nil {
			w.pending = append(w.pending, kernel.OpCall{Fn: env.Done})
		}
		// Unbind between requests so think-time gaps attribute to
		// background rather than the finished request.
		w.pending = append(w.pending, kernel.OpCall{Fn: func(k *kernel.Kernel, t *kernel.Task) {
			k.Rebind(t, nil)
		}})
	}
}

// auxWorker serves a persistent connection: receive, run handler ops, repeat.
type auxWorker struct {
	end     *kernel.Endpoint
	handler Handler
	pending []kernel.Op
	waiting bool
}

func (w *auxWorker) Next(k *kernel.Kernel, t *kernel.Task) kernel.Op {
	for {
		if len(w.pending) > 0 {
			op := w.pending[0]
			w.pending = w.pending[1:]
			return op
		}
		if !w.waiting {
			w.waiting = true
			return kernel.OpRecv{End: w.end}
		}
		w.waiting = false
		w.pending = w.handler(k, t, t.LastRecv)
	}
}

// Pool is a set of worker tasks serving one stage.
type Pool struct {
	Name    string
	Workers []*kernel.Task
}

// NewEntryPool spawns n workers serving the listener. The factory builds
// each worker's handler, letting workers own per-worker state such as a
// persistent connection to a dedicated database thread. The completion
// callback carried in each Envelope runs after the handler ops.
func NewEntryPool(k *kernel.Kernel, name string, n int, l *kernel.Listener, factory func(worker int) Handler) *Pool {
	p := &Pool{Name: name}
	for i := 0; i < n; i++ {
		w := &entryWorker{l: l, handler: factory(i)}
		p.Workers = append(p.Workers, k.Spawn(name, w, nil))
	}
	return p
}

// NewAuxWorker spawns one worker serving a persistent connection endpoint —
// e.g. the MySQL thread paired with an httpd worker in WeBWorK.
func NewAuxWorker(k *kernel.Kernel, name string, end *kernel.Endpoint, h Handler) *kernel.Task {
	return k.Spawn(name, &auxWorker{end: end, handler: h}, nil)
}

// Deployment is a workload instantiated on a machine: the entry listener
// plus a factory for new requests.
type Deployment struct {
	// Entry receives injected request envelopes.
	Entry *kernel.Listener
	// NewRequest draws the next request's type and payload.
	NewRequest func() *Request
	// MeanServiceSec estimates one request's mean busy time on this
	// machine (all stages), for load planning.
	MeanServiceSec float64
	// Pools lists the deployment's worker pools.
	Pools []*Pool
}
