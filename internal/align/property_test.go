package align

import (
	"testing"

	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// TestMeterDelayRecovery is the property behind Figure 2: for a meter whose
// readings are true window averages of the modeled power delivered after an
// unknown fixed delay, cross-correlation over hypothetical delays must peak
// at the true delay. With i.i.d. random model buckets the aligned hypothesis
// correlates perfectly and every misaligned one decorrelates, so the
// estimate should be exact at the scan resolution.
func TestMeterDelayRecovery(t *testing.T) {
	const (
		modelInterval = sim.Millisecond
		meterInterval = 10 * sim.Millisecond
		buckets       = 2000
		idleW         = 35.0
		step          = sim.Millisecond
	)
	for _, seed := range []uint64{1, 7, 42} {
		for _, trueDelay := range []sim.Time{0, 37 * sim.Millisecond, 250 * sim.Millisecond} {
			rng := sim.NewRand(seed)
			modelPower := make([]float64, buckets)
			for i := range modelPower {
				modelPower[i] = 20 * rng.Float64()
			}

			var measured []power.Sample
			horizon := sim.Time(buckets) * modelInterval
			for end := meterInterval; end+trueDelay <= horizon; end += meterInterval {
				mp, ok := modelWindowMean(modelPower, modelInterval, end-meterInterval, end)
				if !ok {
					t.Fatalf("seed %d: window ending %s not covered", seed, sim.FormatTime(end))
				}
				measured = append(measured, power.Sample{
					Arrival: end + trueDelay,
					Watts:   idleW + mp,
				})
			}

			curve := CorrelationCurve(measured, idleW, meterInterval,
				modelPower, modelInterval, step, 0, 400*sim.Millisecond)
			got, err := EstimateDelay(curve)
			if err != nil {
				t.Fatalf("seed %d delay %s: EstimateDelay: %v",
					seed, sim.FormatTime(trueDelay), err)
			}
			if got != trueDelay {
				t.Errorf("seed %d: recovered delay %s, want %s",
					seed, sim.FormatTime(got), sim.FormatTime(trueDelay))
			}
		}
	}
}
