package align

import (
	"math"
	"sort"

	"powercontainers/internal/model"
	"powercontainers/internal/sim"
)

// Robust defaults; zero-valued Robust fields select these.
const (
	defaultRobustMADK     = 5.0
	defaultRobustMinPairs = 8
	defaultRobustMaxShift = 3.0
)

// Robust configures the Recalibrator's graceful-degradation responses to
// corrupted measurements: MAD-based outlier rejection of aligned pairs at
// ingestion, and a coefficient sanity gate that falls back to the offline
// calibration base when a refit diverges. The zero value disables both —
// the legacy ingest-everything behaviour, kept bit-identical so robustness
// is individually ablatable.
type Robust struct {
	// Enabled turns on outlier rejection and refit sanity gating.
	Enabled bool
	// MADK is the rejection threshold in robust standard deviations
	// (1.4826·MAD); default 5.
	MADK float64
	// MinPairs is the smallest aligned batch worth computing robust
	// statistics over — smaller batches pass through unfiltered;
	// default 8.
	MinPairs int
	// MaxShift bounds how far (relative L2 distance over the coefficient
	// vector) a refit may move from the offline-only fit before it is
	// deemed divergent and replaced by that fit; default 3.
	MaxShift float64
}

// AuditSink observes the Recalibrator's degradation actions so
// internal/audit can assert they are sane. A nil sink disables reporting;
// every call site nil-guards.
type AuditSink interface {
	// OnRecalReject fires per rejected aligned pair: its residual
	// deviation from the batch median exceeded the MAD threshold.
	OnRecalReject(now sim.Time, deviationW, thresholdW float64)
	// OnRecalFallback fires when a degradation fallback engages (a
	// divergent refit replaced by the offline fit, or a meter failover).
	OnRecalFallback(now sim.Time, reason string)
}

// estimate is the scope-consistent model prediction for an aligned pair:
// package-scope meters see only processor-side terms, machine-scope meters
// see devices too.
func (r *Recalibrator) estimate(c model.Coefficients, m model.Metrics) float64 {
	if r.Scope == model.ScopePackage {
		return c.EstimateCPU(m)
	}
	return c.Estimate(m)
}

func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// rejectOutliers drops aligned pairs whose model residual deviates from
// the batch median by more than MADK robust standard deviations. Outlier
// spikes and stuck readings land far outside the residual cloud of honest
// measurement noise, so they are rejected before they reach the normal
// equations; a degenerate batch (zero MAD, or fewer than MinPairs pairs)
// passes through untouched rather than trusting unstable statistics.
func (r *Recalibrator) rejectOutliers(now sim.Time, pairs []AlignedPair, current model.Coefficients) []AlignedPair {
	minPairs := r.Robust.MinPairs
	if minPairs <= 0 {
		minPairs = defaultRobustMinPairs
	}
	if len(pairs) < minPairs {
		return pairs
	}
	k := r.Robust.MADK
	if k <= 0 {
		k = defaultRobustMADK
	}
	res := make([]float64, len(pairs))
	for i, p := range pairs {
		res[i] = p.ActiveW - r.estimate(current, p.M)
	}
	med := median(append([]float64(nil), res...))
	absdev := make([]float64, len(res))
	for i, v := range res {
		absdev[i] = math.Abs(v - med)
	}
	// 1.4826·MAD estimates σ for gaussian residuals.
	scale := 1.4826 * median(absdev)
	if !(scale > 0) {
		return pairs // all residuals identical: nothing to reject against
	}
	thr := k * scale
	kept := make([]AlignedPair, 0, len(pairs))
	for i, p := range pairs {
		if math.Abs(res[i]-med) > thr {
			r.rejected++
			if r.Audit != nil {
				r.Audit.OnRecalReject(now, res[i]-med, thr)
			}
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// offlineFit fits the model over the offline calibration block alone — the
// known-good base the sanity gate falls back to. The pristine offline Gram
// is solved directly when it matches the requested plan; otherwise the
// batch path runs.
func (r *Recalibrator) offlineFit(base model.Coefficients) (model.Coefficients, error) {
	opts := model.FitOptions{
		Scope:            r.Scope,
		IncludeChipShare: base.IncludesChipShare,
		IdleW:            base.IdleW,
		Base:             base,
	}
	plan := model.FitPlan{Scope: r.Scope, IncludeChipShare: base.IncludesChipShare}
	if r.offGram != nil && r.planKnown && plan == r.plan {
		return model.FitFromGram(r.offGram, opts)
	}
	return model.Fit(r.Offline, opts)
}

// saneOrFallback gates a successful refit: non-finite coefficients or a
// relative shift beyond MaxShift from the offline-only fit mark the refit
// divergent (corrupted online samples overwhelmed the window), and the
// offline fit is returned instead.
func (r *Recalibrator) saneOrFallback(now sim.Time, base, c model.Coefficients) (model.Coefficients, error) {
	off, err := r.offlineFit(base)
	if err != nil {
		return c, nil // no reference to gate against; keep the refit
	}
	maxShift := r.Robust.MaxShift
	if maxShift <= 0 {
		maxShift = defaultRobustMaxShift
	}
	var dist2, norm2 float64
	cv, ov := c.Vector(), off.Vector()
	sane := true
	for i := range cv {
		if math.IsNaN(cv[i]) || math.IsInf(cv[i], 0) {
			sane = false
			break
		}
		d := cv[i] - ov[i]
		dist2 += d * d
		norm2 += ov[i] * ov[i]
	}
	if sane && math.Sqrt(dist2) <= maxShift*(math.Sqrt(norm2)+1e-9) {
		return c, nil
	}
	r.fallbacks++
	if r.Audit != nil {
		r.Audit.OnRecalFallback(now, "refit diverged from offline base")
	}
	return off, nil
}
