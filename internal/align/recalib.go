package align

import (
	"fmt"

	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// Recalibrator performs the paper's measurement-aligned online model
// recalibration: it ingests newly delivered meter readings, aligns them
// with the facility's system metric series using the estimated delay, and
// refits the model over the union of offline calibration samples and online
// samples, weighed equally (§3.2).
type Recalibrator struct {
	// Meter supplies online measurements.
	Meter power.Meter
	// Scope selects the regression target: package-scope against an
	// on-chip meter, machine-scope against a wall meter.
	Scope model.FitScope
	// Offline holds the original calibration samples.
	Offline []model.CalSample
	// MaxOnline bounds the retained online sample set (FIFO eviction).
	MaxOnline int
	// MinOnline is the number of online samples required before the
	// first refit.
	MinOnline int
	// AutoAlignAfter is how many delivered samples to accumulate before
	// estimating the delay; until then Ingest buffers without aligning.
	AutoAlignAfter int
	// MaxDelay bounds the delay search.
	MaxDelay sim.Time

	delay       sim.Time
	delayKnown  bool
	online      []model.CalSample
	seen        int
	buffered    []power.Sample
	refits      int
	lastFitErr  error
	alignedOnce bool
}

// NewRecalibrator returns a recalibrator with sensible defaults for the
// given meter: the delay search spans 10× the meter interval plus 2 s.
func NewRecalibrator(meter power.Meter, scope model.FitScope, offline []model.CalSample) *Recalibrator {
	return &Recalibrator{
		Meter:          meter,
		Scope:          scope,
		Offline:        offline,
		MaxOnline:      4000,
		MinOnline:      8,
		AutoAlignAfter: 10,
		MaxDelay:       2*sim.Second + 2*meter.Interval(),
	}
}

// Delay returns the estimated measurement delay and whether it is known yet.
func (r *Recalibrator) Delay() (sim.Time, bool) { return r.delay, r.delayKnown }

// SetDelay fixes the delay explicitly (used when a prior alignment run
// already measured it; the paper notes the lag on a given system is
// unlikely to change dynamically).
func (r *Recalibrator) SetDelay(d sim.Time) {
	r.delay = d
	r.delayKnown = true
}

// OnlineCount returns the number of retained online samples.
func (r *Recalibrator) OnlineCount() int { return len(r.online) }

// Refits returns how many successful refits have been performed.
func (r *Recalibrator) Refits() int { return r.refits }

// Ingest pulls newly delivered meter samples at time now, aligns them
// against the metric series, and appends online calibration samples.
// It returns the number of new online samples.
func (r *Recalibrator) Ingest(now sim.Time, ms *model.MetricSeries, current model.Coefficients) int {
	all := r.Meter.Read(now)
	if len(all) <= r.seen {
		return 0
	}
	fresh := all[r.seen:]
	r.seen = len(all)
	r.buffered = append(r.buffered, fresh...)

	if !r.delayKnown {
		if len(r.buffered) < r.AutoAlignAfter {
			return 0
		}
		modelPower := ms.ModeledPower(current, ms.Len())
		curve := CorrelationCurve(r.buffered, r.Meter.IdleW(), r.Meter.Interval(),
			modelPower, ms.Interval(), ms.Interval(), 0, r.MaxDelay)
		d, err := EstimateDelay(curve)
		if err != nil {
			r.lastFitErr = err
			return 0
		}
		r.delay = d
		r.delayKnown = true
	}

	pairs := AlignSamples(r.buffered, r.Meter.IdleW(), r.Meter.Interval(), ms, r.delay)
	r.buffered = r.buffered[:0]
	added := 0
	for _, p := range pairs {
		s := model.CalSample{M: p.M, Weight: 1}
		if r.Scope == model.ScopePackage {
			s.PkgActiveW = p.ActiveW
			s.MachineActiveW = p.ActiveW // unused in package scope
		} else {
			s.MachineActiveW = p.ActiveW
		}
		r.online = append(r.online, s)
		added++
	}
	if over := len(r.online) - r.MaxOnline; over > 0 {
		r.online = append(r.online[:0], r.online[over:]...)
	}
	return added
}

// Refit fits the model over offline+online samples, equally weighted. The
// base coefficients supply any terms outside the fitted scope.
func (r *Recalibrator) Refit(base model.Coefficients) (model.Coefficients, error) {
	if len(r.online) < r.MinOnline {
		return base, fmt.Errorf("align: only %d online samples (need %d)", len(r.online), r.MinOnline)
	}
	combined := make([]model.CalSample, 0, len(r.Offline)+len(r.online))
	combined = append(combined, r.Offline...)
	combined = append(combined, r.online...)
	c, err := model.Fit(combined, model.FitOptions{
		Scope:            r.Scope,
		IncludeChipShare: base.IncludesChipShare,
		IdleW:            base.IdleW,
		Base:             base,
	})
	if err != nil {
		r.lastFitErr = err
		return base, err
	}
	r.refits++
	return c, nil
}
