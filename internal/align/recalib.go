package align

import (
	"fmt"

	"powercontainers/internal/linalg"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// defaultRebuildEvery bounds how many FIFO evictions may pass through the
// incremental Gram downdate before an exact rebuild. Each Remove leaves
// rounding-level residue in the accumulators (float addition does not
// associate); a periodic rebuild from the pristine offline block plus the
// live online window resets that residue to zero.
const defaultRebuildEvery = 256

// Recalibrator performs the paper's measurement-aligned online model
// recalibration: it ingests newly delivered meter readings, aligns them
// with the facility's system metric series using the estimated delay, and
// refits the model over the union of offline calibration samples and online
// samples, weighed equally (§3.2).
//
// The refit path is incremental: the offline block's normal equations are
// accumulated once, online pairs fold in at Ingest and fold out on
// MaxOnline eviction, so Refit pays only the O(k³) solve instead of
// re-accumulating O(offline+online) samples. refitReference retains the
// original batch path; the incremental path falls back to it whenever the
// fit plan changes under it or an accumulator operation fails.
type Recalibrator struct {
	// Meter supplies online measurements.
	Meter power.Meter
	// Scope selects the regression target: package-scope against an
	// on-chip meter, machine-scope against a wall meter.
	Scope model.FitScope
	// Offline holds the original calibration samples.
	Offline []model.CalSample
	// MaxOnline bounds the retained online sample set (FIFO eviction).
	MaxOnline int
	// MinOnline is the number of online samples required before the
	// first refit.
	MinOnline int
	// AutoAlignAfter is how many delivered samples to accumulate before
	// estimating the delay; until then Ingest buffers without aligning.
	AutoAlignAfter int
	// MaxDelay bounds the delay search.
	MaxDelay sim.Time
	// RebuildEvery is how many evicted samples the incremental Gram may
	// absorb via downdates before an exact rebuild (0 selects the
	// default). Lower values cost more rebuild work; higher values let
	// rounding residue ride longer between resets.
	RebuildEvery int
	// Robust configures MAD-based outlier rejection and refit sanity
	// gating (robust.go); the zero value disables both.
	Robust Robust
	// Audit, when non-nil, observes degradation actions (rejections,
	// fallbacks) for invariant checking.
	Audit AuditSink

	delay      sim.Time
	delayKnown bool
	online     []model.CalSample
	seen       int
	buffered   []power.Sample
	refits     int
	rejected   int
	fallbacks  int
	lastFitErr error

	// Incremental normal-equation state. plan is the layout the grams were
	// accumulated under; gramOff latches the batch fallback after any
	// accumulator failure (a sample the plan rejects, an underflowing
	// Remove) so a half-updated Gram is never solved.
	plan      model.FitPlan
	planKnown bool
	offGram   *linalg.Gram
	gram      *linalg.Gram
	evictions int
	gramOff   bool

	// Incremental modeled-power cache for the delay search: mp mirrors
	// ms.ModeledPower(mpCoeff, len(mp)) and is extended/patched from the
	// metric series' dirty low-water mark instead of being rebuilt on
	// every delay-unknown Ingest.
	mp      []float64
	mpCoeff model.Coefficients
	mpValid bool

	// lastNow is the most recent Ingest time, used to stamp audit events
	// emitted from Refit (which has no clock of its own).
	lastNow sim.Time
}

// NewRecalibrator returns a recalibrator with sensible defaults for the
// given meter: the delay search spans 10× the meter interval plus 2 s.
func NewRecalibrator(meter power.Meter, scope model.FitScope, offline []model.CalSample) *Recalibrator {
	return &Recalibrator{
		Meter:          meter,
		Scope:          scope,
		Offline:        offline,
		MaxOnline:      4000,
		MinOnline:      8,
		AutoAlignAfter: 10,
		MaxDelay:       2*sim.Second + 2*meter.Interval(),
		RebuildEvery:   defaultRebuildEvery,
	}
}

// Delay returns the estimated measurement delay and whether it is known yet.
func (r *Recalibrator) Delay() (sim.Time, bool) { return r.delay, r.delayKnown }

// SetDelay fixes the delay explicitly (used when a prior alignment run
// already measured it; the paper notes the lag on a given system is
// unlikely to change dynamically).
func (r *Recalibrator) SetDelay(d sim.Time) {
	r.delay = d
	r.delayKnown = true
}

// OnlineCount returns the number of retained online samples.
func (r *Recalibrator) OnlineCount() int { return len(r.online) }

// Refits returns how many successful refits have been performed.
func (r *Recalibrator) Refits() int { return r.refits }

// Delivered returns how many meter samples have reached the recalibrator —
// the freshness signal the meter-health watchdog (core) monitors to detect
// a dead meter.
func (r *Recalibrator) Delivered() int { return r.seen }

// Rejected returns how many aligned pairs robust ingestion has discarded.
func (r *Recalibrator) Rejected() int { return r.rejected }

// Fallbacks returns how many divergent refits fell back to the offline fit.
func (r *Recalibrator) Fallbacks() int { return r.fallbacks }

// readFresh pulls meter samples not seen by a previous Ingest. Meters that
// implement power.SinceReader skip rematerializing the already-consumed
// prefix — without it, every Ingest re-derives all samples since time zero.
func (r *Recalibrator) readFresh(now sim.Time) []power.Sample {
	fresh, seen := power.ReadFresh(r.Meter, now, r.seen)
	r.seen = seen
	return fresh
}

// modeledPower returns the modeled active power series under current,
// recomputing only buckets at or above the metric series' dirty low-water
// mark since the previous call (late writes reach back: device I/O spreads
// energy over past buckets, and per-core periods close at different times).
// A coefficient change invalidates the whole cache. Recomputed buckets get
// the identical c.Estimate(ms.At(b)) evaluation the batch path performs, so
// the cached series is bit-identical to ms.ModeledPower(current, ms.Len()).
func (r *Recalibrator) modeledPower(ms *model.MetricSeries, current model.Coefficients) []float64 {
	n := ms.Len()
	from := 0
	if r.mpValid && current == r.mpCoeff {
		from = len(r.mp)
		if d := ms.DirtyLow(); d < from {
			from = d
		}
	}
	if cap(r.mp) < n {
		grown := make([]float64, n)
		copy(grown, r.mp[:from])
		r.mp = grown
	} else {
		r.mp = r.mp[:n]
	}
	for b := from; b < n; b++ {
		r.mp[b] = current.Estimate(ms.At(b))
	}
	ms.ClearDirty()
	r.mpCoeff = current
	r.mpValid = true
	return r.mp
}

// Ingest pulls newly delivered meter samples at time now, aligns them
// against the metric series, and appends online calibration samples.
// It returns the number of new online samples.
func (r *Recalibrator) Ingest(now sim.Time, ms *model.MetricSeries, current model.Coefficients) int {
	r.lastNow = now
	fresh := r.readFresh(now)
	if len(fresh) == 0 {
		return 0
	}
	r.buffered = append(r.buffered, fresh...)

	if !r.delayKnown {
		if len(r.buffered) < r.AutoAlignAfter {
			return 0
		}
		modelPower := r.modeledPower(ms, current)
		curve := CorrelationCurve(r.buffered, r.Meter.IdleW(), r.Meter.Interval(),
			modelPower, ms.Interval(), ms.Interval(), 0, r.MaxDelay)
		d, err := EstimateDelay(curve)
		if err != nil {
			r.lastFitErr = err
			return 0
		}
		r.delay = d
		r.delayKnown = true
	}

	pairs := AlignSamples(r.buffered, r.Meter.IdleW(), r.Meter.Interval(), ms, r.delay)
	r.buffered = r.buffered[:0]
	if r.Robust.Enabled {
		pairs = r.rejectOutliers(now, pairs, current)
	}
	r.syncPlan(current)
	added := 0
	for _, p := range pairs {
		s := model.CalSample{M: p.M, Weight: 1}
		if r.Scope == model.ScopePackage {
			s.PkgActiveW = p.ActiveW
			s.MachineActiveW = p.ActiveW // unused in package scope
		} else {
			s.MachineActiveW = p.ActiveW
		}
		r.online = append(r.online, s)
		r.gramAdd(s)
		added++
	}
	if over := len(r.online) - r.MaxOnline; over > 0 {
		for _, s := range r.online[:over] {
			r.gramRemove(s)
		}
		r.online = append(r.online[:0], r.online[over:]...)
		r.evictions += over
		r.maybeRebuild()
	}
	return added
}

// syncPlan keeps the incremental grams in step with the fit plan derived
// from the coefficients Ingest observes. core.RecalibrateNow passes the
// same coefficients to Ingest and the following Refit, so the plan derived
// here is the one Refit will want; if a caller refits under a different
// plan anyway, Refit detects the mismatch and takes the batch path.
func (r *Recalibrator) syncPlan(current model.Coefficients) {
	if r.gramOff {
		return
	}
	plan := model.FitPlan{Scope: r.Scope, IncludeChipShare: current.IncludesChipShare}
	if r.planKnown && plan == r.plan && r.gram != nil {
		return
	}
	r.plan = plan
	r.planKnown = true
	r.rebuildGrams()
}

// rebuildGrams reaccumulates the offline block and the live online window
// from scratch under the current plan — the exact accumulation a batch
// model.Fit over offline+online would perform, and therefore bit-identical
// to it.
func (r *Recalibrator) rebuildGrams() {
	off, err := model.FitGram(r.Offline, r.plan)
	if err != nil {
		r.disableGram(err)
		return
	}
	r.offGram = off
	g := off.Clone()
	for _, s := range r.online {
		if err := r.plan.Fold(g, s); err != nil {
			r.disableGram(err)
			return
		}
	}
	r.gram = g
	r.evictions = 0
}

// maybeRebuild resets downdate rounding residue after enough evictions.
func (r *Recalibrator) maybeRebuild() {
	if r.gram == nil || r.gramOff {
		return
	}
	every := r.RebuildEvery
	if every <= 0 {
		every = defaultRebuildEvery
	}
	if r.evictions < every {
		return
	}
	g := r.offGram.Clone()
	for _, s := range r.online {
		if err := r.plan.Fold(g, s); err != nil {
			r.disableGram(err)
			return
		}
	}
	r.gram = g
	r.evictions = 0
}

func (r *Recalibrator) gramAdd(s model.CalSample) {
	if r.gram == nil || r.gramOff {
		return
	}
	if err := r.plan.Fold(r.gram, s); err != nil {
		r.disableGram(err)
	}
}

func (r *Recalibrator) gramRemove(s model.CalSample) {
	if r.gram == nil || r.gramOff {
		return
	}
	if err := r.plan.Unfold(r.gram, s); err != nil {
		r.disableGram(err)
	}
}

// disableGram latches the batch-refit fallback: a failed accumulator
// operation leaves the Gram half-updated, so it must never be solved.
func (r *Recalibrator) disableGram(err error) {
	r.gram = nil
	r.offGram = nil
	r.gramOff = true
	r.planKnown = false
	r.lastFitErr = err
}

// Refit fits the model over offline+online samples, equally weighted. The
// base coefficients supply any terms outside the fitted scope. When the
// incremental Gram matches the requested plan it is solved directly
// (O(k³)); otherwise the batch reference path runs. With Robust enabled, a
// successful fit additionally passes the sanity gate: a divergent result
// is replaced by the offline-only fit (robust.go).
func (r *Recalibrator) Refit(base model.Coefficients) (model.Coefficients, error) {
	c, err := r.refit(base)
	if err != nil || !r.Robust.Enabled {
		return c, err
	}
	return r.saneOrFallback(r.lastNow, base, c)
}

func (r *Recalibrator) refit(base model.Coefficients) (model.Coefficients, error) {
	if len(r.online) < r.MinOnline {
		return base, fmt.Errorf("align: only %d online samples (need %d)", len(r.online), r.MinOnline)
	}
	plan := model.FitPlan{Scope: r.Scope, IncludeChipShare: base.IncludesChipShare}
	if r.gram == nil || !r.planKnown || plan != r.plan {
		return r.refitReference(base)
	}
	c, err := model.FitFromGram(r.gram, model.FitOptions{
		Scope:            r.Scope,
		IncludeChipShare: base.IncludesChipShare,
		IdleW:            base.IdleW,
		Base:             base,
	})
	if err != nil {
		r.lastFitErr = err
		return base, err
	}
	r.refits++
	return c, nil
}

// refitReference is the original batch refit, retained both as the fallback
// for plan changes mid-stream and as the reference implementation the
// incremental path is property-tested against.
func (r *Recalibrator) refitReference(base model.Coefficients) (model.Coefficients, error) {
	combined := make([]model.CalSample, 0, len(r.Offline)+len(r.online))
	combined = append(combined, r.Offline...)
	combined = append(combined, r.online...)
	c, err := model.Fit(combined, model.FitOptions{
		Scope:            r.Scope,
		IncludeChipShare: base.IncludesChipShare,
		IdleW:            base.IdleW,
		Base:             base,
	})
	if err != nil {
		r.lastFitErr = err
		return base, err
	}
	r.refits++
	return c, nil
}
