package align

import (
	"math"
	"testing"

	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// closeEnough is the tight relative tolerance the fast paths must hold on
// benign (physically plausible) inputs: rounding noise from reassociating a
// window sum, nothing more.
func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestCorrelationCurveFastMatchesReference replays the fuzz corpus seeds
// (same massaging as the fuzz harness) plus realistic synthetic alignment
// scenarios through both curve implementations, asserting point-for-point
// agreement within tight tolerance and an identical EstimateDelay outcome.
func TestCorrelationCurveFastMatchesReference(t *testing.T) {
	cases := make([]curveFuzzCase, 0, len(curveCorpusSeeds)+2)
	for _, s := range curveCorpusSeeds {
		cases = append(cases, massageCurveInputs(s.data, s.meterIv, s.modelIv, s.step, s.minD, s.maxD, s.idleW))
	}
	// Chip-meter-shaped: fine meter windows, small lag range.
	mpFine, fine := synthSeries(3000, sim.Millisecond, 7*sim.Millisecond, 20, 1)
	cases = append(cases, curveFuzzCase{
		measured: fine, modelPower: mpFine, idleW: 20,
		meterIv: sim.Millisecond, modelIv: sim.Millisecond,
		step: sim.Millisecond, minD: -50 * sim.Millisecond, maxD: 50 * sim.Millisecond,
	})
	// Wattsup-shaped: coarse meter windows over fine model buckets — the
	// configuration where the window loop used to dominate.
	mpCoarse, coarse := synthSeries(30000, sim.Second, 1200*sim.Millisecond, 150, 2)
	cases = append(cases, curveFuzzCase{
		measured: coarse, modelPower: mpCoarse, idleW: 150,
		meterIv: sim.Second, modelIv: sim.Millisecond,
		step: 5 * sim.Millisecond, minD: 0, maxD: 2 * sim.Second,
	})

	for ci, c := range cases {
		fast := CorrelationCurve(c.measured, c.idleW, c.meterIv, c.modelPower, c.modelIv, c.step, c.minD, c.maxD)
		ref := correlationCurveRef(c.measured, c.idleW, c.meterIv, c.modelPower, c.modelIv, c.step, c.minD, c.maxD)
		if len(fast) != len(ref) {
			t.Fatalf("case %d: fast curve has %d points, reference %d", ci, len(fast), len(ref))
		}
		for i := range ref {
			if fast[i].Delay != ref[i].Delay {
				t.Fatalf("case %d point %d: lag %d vs %d", ci, i, fast[i].Delay, ref[i].Delay)
			}
			if !closeEnough(fast[i].Raw, ref[i].Raw) {
				t.Fatalf("case %d delay %d: raw %v vs %v", ci, ref[i].Delay, fast[i].Raw, ref[i].Raw)
			}
			if !closeEnough(fast[i].Normalized, ref[i].Normalized) {
				t.Fatalf("case %d delay %d: normalized %v vs %v", ci, ref[i].Delay, fast[i].Normalized, ref[i].Normalized)
			}
		}
		dFast, errFast := EstimateDelay(fast)
		dRef, errRef := EstimateDelay(ref)
		if (errFast == nil) != (errRef == nil) {
			t.Fatalf("case %d: estimate outcome diverged: fast err %v, ref err %v", ci, errFast, errRef)
		}
		if errRef == nil && dFast != dRef {
			t.Fatalf("case %d: estimated delay %s (fast) vs %s (ref)", ci, sim.FormatTime(dFast), sim.FormatTime(dRef))
		}
	}
}

// TestEstimateDelayTieBreak pins the documented tie-breaking contract: among
// equal normalized peaks, the earliest lag in curve order wins.
func TestEstimateDelayTieBreak(t *testing.T) {
	plateau := []LagPoint{
		{Delay: 0, Normalized: 0.5},
		{Delay: 1, Normalized: 0.9},
		{Delay: 2, Normalized: 0.9},
		{Delay: 3, Normalized: 0.9},
		{Delay: 4, Normalized: 0.2},
	}
	d, err := EstimateDelay(plateau)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("plateau resolved to delay %d, want leading edge 1", d)
	}
	// The first point itself can be the incumbent peak.
	leading := []LagPoint{
		{Delay: 10, Normalized: 0.7},
		{Delay: 11, Normalized: 0.7},
	}
	if d, err := EstimateDelay(leading); err != nil || d != 10 {
		t.Fatalf("leading plateau: delay %d err %v, want 10", d, err)
	}
}

// incrementalMeter serves synthetic samples like fakeMeter but counts Read
// calls so tests can confirm the SinceReader path is NOT taken (fakeMeter
// does not implement it — the fallback must keep working).
type incrementalMeter struct {
	fakeMeter
	reads int
}

func (m *incrementalMeter) Read(now sim.Time) []power.Sample {
	m.reads++
	return m.fakeMeter.Read(now)
}

// buildRecalibScenario reproduces the TestRecalibratorLearnsShiftedModel
// setup: a metric series, meter samples from a shifted truth model, and a
// small offline block.
func buildRecalibScenario(t *testing.T) (*model.MetricSeries, []power.Sample, []model.CalSample) {
	t.Helper()
	ms := model.NewMetricSeries(sim.Millisecond)
	rng := sim.NewRand(5)
	const delay = 10 * sim.Millisecond
	for b := sim.Time(0); b < 4000; b++ {
		m := model.Metrics{Core: 2 + rng.Float64(), Ins: rng.Float64() * 3, Mem: rng.Float64() * 0.02}
		ms.AddSpread(b*sim.Millisecond, (b+1)*sim.Millisecond, m)
	}
	var samples []power.Sample
	for w := sim.Time(0); w < 400; w++ {
		lo, hi := int(w*10), int((w+1)*10)
		m := ms.WindowMean(lo, hi)
		truth := 8*m.Core + 1*m.Ins + 500*m.Mem
		samples = append(samples, power.Sample{
			Start:   w * 10 * sim.Millisecond,
			Arrival: (w+1)*10*sim.Millisecond + delay,
			Watts:   truth + 30 + rng.NormFloat64(0.2),
		})
	}
	var offline []model.CalSample
	for i := 0; i < 4; i++ {
		m := model.Metrics{Core: float64(i + 1), Ins: float64(i)}
		offline = append(offline, model.CalSample{
			M: m, MachineActiveW: 8*m.Core + m.Ins, PkgActiveW: math.NaN(),
		})
	}
	return ms, samples, offline
}

// coeffFields enumerates a Coefficients value for tolerance comparison.
func coeffFields(c model.Coefficients) map[string]float64 {
	return map[string]float64{
		"core": c.Core, "ins": c.Ins, "float": c.Float, "cache": c.Cache,
		"mem": c.Mem, "chip": c.Chip, "disk": c.Disk, "net": c.Net,
	}
}

// TestRecalibratorIncrementalMatchesBatch streams samples through a
// recalibrator with a small online window and frequent rebuilds, so the
// incremental Gram sees adds, eviction downdates, and periodic exact
// rebuilds. After every refit the result must match a from-scratch batch
// fit over offline+online — exactly before the first eviction, and within
// rounding-level tolerance after downdates.
func TestRecalibratorIncrementalMatchesBatch(t *testing.T) {
	ms, samples, offline := buildRecalibScenario(t)
	base := model.Coefficients{Core: 8, Ins: 1, IncludesChipShare: true}
	meter := &incrementalMeter{fakeMeter: fakeMeter{samples: samples, interval: 10 * sim.Millisecond, idle: 30}}
	r := NewRecalibrator(meter, model.ScopeMachine, offline)
	r.MaxDelay = 100 * sim.Millisecond
	r.MaxOnline = 64
	r.RebuildEvery = 16

	refits := 0
	totalAdded := 0
	current := base
	for now := 250 * sim.Millisecond; now <= 5*sim.Second; now += 250 * sim.Millisecond {
		added := r.Ingest(now, ms, current)
		if added == 0 {
			continue
		}
		totalAdded += added
		// Eviction happens inside Ingest the moment the window overflows.
		evicted := totalAdded > r.MaxOnline
		if len(r.online) > r.MaxOnline {
			t.Fatalf("online window %d exceeds MaxOnline %d", len(r.online), r.MaxOnline)
		}
		got, err := r.Refit(current)
		if err != nil {
			continue
		}
		refits++
		want, err := model.Fit(append(append([]model.CalSample(nil), offline...), r.online...), model.FitOptions{
			Scope:            model.ScopeMachine,
			IncludeChipShare: current.IncludesChipShare,
			IdleW:            current.IdleW,
			Base:             current,
		})
		if err != nil {
			t.Fatalf("t=%s: batch reference fit failed: %v", sim.FormatTime(now), err)
		}
		gotF, wantF := coeffFields(got), coeffFields(want)
		for name, w := range wantF {
			g := gotF[name]
			if !evicted {
				if g != w {
					t.Fatalf("t=%s (pre-eviction): %s = %v, batch %v — must be bit-identical", sim.FormatTime(now), name, g, w)
				}
			} else if !closeEnough(g, w) {
				t.Fatalf("t=%s: %s = %v, batch %v — drifted past tolerance", sim.FormatTime(now), name, g, w)
			}
		}
		current = got
	}
	if refits < 5 {
		t.Fatalf("only %d refits exercised", refits)
	}
	if totalAdded <= r.MaxOnline {
		t.Fatal("scenario never filled the online window; eviction path untested")
	}
	if r.gramOff || r.gram == nil {
		t.Fatal("incremental gram fell back to the batch path")
	}
}

// TestRecalibratorPlanChangeFallsBack refits under a different chip-share
// plan than Ingest accumulated; the recalibrator must detect the mismatch
// and produce the batch-path result exactly.
func TestRecalibratorPlanChangeFallsBack(t *testing.T) {
	ms, samples, offline := buildRecalibScenario(t)
	withChip := model.Coefficients{Core: 8, Ins: 1, IncludesChipShare: true}
	meter := &fakeMeter{samples: samples, interval: 10 * sim.Millisecond, idle: 30}
	r := NewRecalibrator(meter, model.ScopeMachine, offline)
	r.MaxDelay = 100 * sim.Millisecond
	if r.Ingest(5*sim.Second, ms, withChip) == 0 {
		t.Fatal("no samples ingested")
	}
	// The gram was accumulated with the chip column; refit without it.
	noChip := model.Coefficients{Core: 8, Ins: 1, IncludesChipShare: false}
	got, err := r.Refit(noChip)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.Fit(append(append([]model.CalSample(nil), offline...), r.online...), model.FitOptions{
		Scope: model.ScopeMachine, IncludeChipShare: false, Base: noChip,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("plan-mismatch refit %+v differs from batch %+v", got, want)
	}
}

// TestModeledPowerCacheMatchesBatch hammers the incremental modeled-power
// cache with extensions, late back-writes, and coefficient changes; every
// call must return a series bit-identical to a from-scratch
// ms.ModeledPower.
func TestModeledPowerCacheMatchesBatch(t *testing.T) {
	ms := model.NewMetricSeries(sim.Millisecond)
	r := &Recalibrator{}
	c1 := model.Coefficients{Core: 8, Ins: 1.5, Mem: 320}
	c2 := model.Coefficients{Core: 7, Ins: 2, Mem: 100, IncludesChipShare: true}
	rng := sim.NewRand(11)

	write := func(b sim.Time) {
		m := model.Metrics{Core: rng.Float64() * 3, Ins: rng.Float64(), Mem: rng.Float64() * 0.05}
		ms.AddSpread(b*sim.Millisecond, (b+1)*sim.Millisecond, m)
	}
	check := func(step string, c model.Coefficients) {
		t.Helper()
		got := r.modeledPower(ms, c)
		want := ms.ModeledPower(c, ms.Len())
		if len(got) != len(want) {
			t.Fatalf("%s: cache has %d buckets, batch %d", step, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: bucket %d = %v, batch %v — must be bit-identical", step, i, got[i], want[i])
			}
		}
	}

	for b := sim.Time(0); b < 100; b++ {
		write(b)
	}
	check("initial", c1)
	// Pure extension.
	for b := sim.Time(100); b < 220; b++ {
		write(b)
	}
	check("extension", c1)
	// Late back-write into an already-cached bucket (device I/O completions
	// and stragglers do this) plus more extension.
	ms.AddSpread(50*sim.Millisecond, 52*sim.Millisecond, model.Metrics{Disk: 0.8})
	for b := sim.Time(220); b < 240; b++ {
		write(b)
	}
	check("back-write", c1)
	// No changes at all: cache must simply persist.
	check("idle", c1)
	// Coefficient change invalidates everything.
	check("coeff-change", c2)
	// And back again.
	check("coeff-revert", c1)
}
