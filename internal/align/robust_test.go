package align

import (
	"math"
	"testing"

	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

type recalAuditLog struct {
	rejects   int
	badReject bool
	fallbacks []string
}

func (l *recalAuditLog) OnRecalReject(now sim.Time, deviationW, thresholdW float64) {
	l.rejects++
	if !(thresholdW > 0) || math.Abs(deviationW) <= thresholdW {
		l.badReject = true
	}
}

func (l *recalAuditLog) OnRecalFallback(now sim.Time, reason string) {
	l.fallbacks = append(l.fallbacks, reason)
}

// spikedWorld builds the TestRecalibratorLearnsShiftedModel scenario — a
// hidden Mem≈500 coefficient the online samples must teach — with every
// spikeEvery-th meter sample multiplied by 6 (injected outliers).
func spikedWorld(spikeEvery int) (*model.MetricSeries, *fakeMeter, []model.CalSample, model.Coefficients) {
	offline := model.Coefficients{Core: 8, Ins: 1, IncludesChipShare: true}
	const truthMem = 500.0
	const delay = 10 * sim.Millisecond

	ms := model.NewMetricSeries(sim.Millisecond)
	rng := sim.NewRand(5)
	for b := sim.Time(0); b < 4000; b++ {
		m := model.Metrics{Core: 2 + rng.Float64(), Ins: rng.Float64() * 3, Mem: rng.Float64() * 0.02}
		ms.AddSpread(b*sim.Millisecond, (b+1)*sim.Millisecond, m)
	}
	var samples []power.Sample
	for w := sim.Time(0); w < 400; w++ {
		lo, hi := int(w*10), int((w+1)*10)
		m := ms.WindowMean(lo, hi)
		truth := 8*m.Core + 1*m.Ins + truthMem*m.Mem
		watts := truth + 30 + rng.NormFloat64(0.2)
		if spikeEvery > 0 && int(w)%spikeEvery == 7 {
			watts *= 6
		}
		samples = append(samples, power.Sample{
			Start:   w * 10 * sim.Millisecond,
			Arrival: (w+1)*10*sim.Millisecond + delay,
			Watts:   watts,
		})
	}
	meter := &fakeMeter{samples: samples, interval: 10 * sim.Millisecond, idle: 30}

	var offlineSamples []model.CalSample
	for i := 0; i < 4; i++ {
		m := model.Metrics{Core: float64(i + 1), Ins: float64(i)}
		offlineSamples = append(offlineSamples, model.CalSample{
			M: m, MachineActiveW: 8*m.Core + m.Ins, PkgActiveW: math.NaN(),
		})
	}
	return ms, meter, offlineSamples, offline
}

// TestRobustRejectsPlantedOutliers: MAD rejection discards injected spikes
// so the refit still converges near the hidden truth, while the non-robust
// recalibrator over the same corrupted stream is pulled visibly away. The
// sanity gate is opened wide (MaxShift) so the test isolates the rejection
// stage — the two degradation responses are individually ablatable.
func TestRobustRejectsPlantedOutliers(t *testing.T) {
	const truthMem = 500.0
	fit := func(robust bool) (model.Coefficients, *Recalibrator, *recalAuditLog) {
		ms, meter, offlineSamples, offline := spikedWorld(15)
		r := NewRecalibrator(meter, model.ScopeMachine, offlineSamples)
		r.MaxDelay = 100 * sim.Millisecond
		// Pin the true delay: spiked samples also skew cross-correlation
		// delay estimation, and this test isolates the rejection stage.
		r.SetDelay(10 * sim.Millisecond)
		log := &recalAuditLog{}
		if robust {
			r.Robust = Robust{Enabled: true, MaxShift: 1e9}
			r.Audit = log
		}
		if added := r.Ingest(5*sim.Second, ms, offline); added == 0 {
			t.Fatal("no online samples ingested")
		}
		c, err := r.Refit(offline)
		if err != nil {
			t.Fatal(err)
		}
		return c, r, log
	}

	robustC, rr, log := fit(true)
	naiveC, rn, _ := fit(false)

	if rr.Rejected() == 0 || log.rejects != rr.Rejected() {
		t.Fatalf("robust path rejected %d pairs but audited %d", rr.Rejected(), log.rejects)
	}
	if log.badReject {
		t.Fatal("audit saw a rejection whose deviation did not exceed its threshold")
	}
	if rn.Rejected() != 0 {
		t.Fatalf("non-robust path rejected %d pairs", rn.Rejected())
	}
	robustErr := math.Abs(robustC.Mem - truthMem)
	naiveErr := math.Abs(naiveC.Mem - truthMem)
	if robustErr > 50 {
		t.Fatalf("robust refit mem = %g, want ≈%g", robustC.Mem, truthMem)
	}
	if naiveErr <= robustErr {
		t.Fatalf("outliers did not hurt the naive fit (robust err %g, naive err %g) — test lost its teeth",
			robustErr, naiveErr)
	}
}

func TestRejectOutliersDegenerateBatches(t *testing.T) {
	r := NewRecalibrator(&fakeMeter{interval: sim.Second}, model.ScopeMachine, nil)
	r.Robust = Robust{Enabled: true}
	cur := model.Coefficients{}
	small := []AlignedPair{{ActiveW: 1}, {ActiveW: 100}, {ActiveW: 1}}
	if got := r.rejectOutliers(0, small, cur); len(got) != len(small) {
		t.Fatalf("batch below MinPairs was filtered: %d of %d", len(got), len(small))
	}
	identical := make([]AlignedPair, 20)
	for i := range identical {
		identical[i] = AlignedPair{ActiveW: 7}
	}
	if got := r.rejectOutliers(0, identical, cur); len(got) != len(identical) {
		t.Fatalf("zero-MAD batch was filtered: %d of %d", len(got), len(identical))
	}
	if r.Rejected() != 0 {
		t.Fatalf("degenerate batches counted rejections: %d", r.Rejected())
	}
}

// TestRobustRefitFallback: when the online window drags the fit far from
// the offline base (relative shift beyond MaxShift), the sanity gate
// replaces the refit with the offline-only fit and audits the fallback.
func TestRobustRefitFallback(t *testing.T) {
	ms, meter, offlineSamples, offline := spikedWorld(0) // clean stream
	r := NewRecalibrator(meter, model.ScopeMachine, offlineSamples)
	r.MaxDelay = 100 * sim.Millisecond
	log := &recalAuditLog{}
	r.Robust = Robust{Enabled: true} // default MaxShift 3
	r.Audit = log
	if added := r.Ingest(5*sim.Second, ms, offline); added == 0 {
		t.Fatal("no online samples ingested")
	}
	// The legitimate refit learns Mem≈500 — an enormous relative shift
	// from the offline base (Core 8, Ins 1), so the gate must engage.
	c, err := r.Refit(offline)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fallbacks() != 1 || len(log.fallbacks) != 1 {
		t.Fatalf("fallbacks = %d, audited %d", r.Fallbacks(), len(log.fallbacks))
	}
	if math.Abs(c.Mem) > 1 {
		t.Fatalf("gated refit returned mem=%g, want the offline fit (≈0)", c.Mem)
	}
	// Widening the gate lets the same window through.
	r2 := NewRecalibrator(meter, model.ScopeMachine, offlineSamples)
	r2.MaxDelay = 100 * sim.Millisecond
	r2.Robust = Robust{Enabled: true, MaxShift: 1e9}
	ms2, meter2, _, _ := spikedWorld(0)
	r2.Meter = meter2
	if added := r2.Ingest(5*sim.Second, ms2, offline); added == 0 {
		t.Fatal("no online samples ingested (wide gate)")
	}
	c2, err := r2.Refit(offline)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2.Mem-500) > 50 {
		t.Fatalf("wide-gate refit mem = %g, want ≈500", c2.Mem)
	}
	if r2.Fallbacks() != 0 {
		t.Fatalf("wide gate still fell back %d times", r2.Fallbacks())
	}
}
