package align

import (
	"math"
	"testing"

	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// synthSeries builds a fluctuating modeled-power series (1 ms buckets) and
// a matching set of meter samples delivered with the given delay.
func synthSeries(nBuckets int, meterInterval, delay sim.Time, idleW float64, seed uint64) ([]float64, []power.Sample) {
	rng := sim.NewRand(seed)
	modelPower := make([]float64, nBuckets)
	for i := range modelPower {
		// Multi-second phases, like real workload load swings, so even
		// coarse one-second meter windows retain the fluctuations.
		phase := float64(i) / 800
		modelPower[i] = 25 + 12*math.Sin(phase) + 5*math.Sin(phase*3.7) + rng.Float64()
	}
	var samples []power.Sample
	per := int(meterInterval / sim.Millisecond)
	for w := 0; (w+1)*per <= nBuckets; w++ {
		var sum float64
		for b := w * per; b < (w+1)*per; b++ {
			sum += modelPower[b]
		}
		start := sim.Time(w) * meterInterval
		samples = append(samples, power.Sample{
			Start:   start,
			Arrival: start + meterInterval + delay,
			Watts:   sum/float64(per) + idleW + rng.NormFloat64(0.3),
		})
	}
	return modelPower, samples
}

func TestEstimateDelayFineMeter(t *testing.T) {
	const trueDelay = 7 * sim.Millisecond
	modelPower, samples := synthSeries(3000, sim.Millisecond, trueDelay, 20, 1)
	curve := CorrelationCurve(samples, 20, sim.Millisecond, modelPower, sim.Millisecond,
		sim.Millisecond, -50*sim.Millisecond, 50*sim.Millisecond)
	got, err := EstimateDelay(curve)
	if err != nil {
		t.Fatal(err)
	}
	if got != trueDelay {
		t.Fatalf("estimated delay %s, want %s", sim.FormatTime(got), sim.FormatTime(trueDelay))
	}
}

func TestEstimateDelayCoarseMeter(t *testing.T) {
	// Wattsup-style: 1 s windows, 1.2 s delay, sub-window resolution.
	const trueDelay = 1200 * sim.Millisecond
	modelPower, samples := synthSeries(30000, sim.Second, trueDelay, 150, 2)
	curve := CorrelationCurve(samples, 150, sim.Second, modelPower, sim.Millisecond,
		5*sim.Millisecond, 0, 2*sim.Second)
	got, err := EstimateDelay(curve)
	if err != nil {
		t.Fatal(err)
	}
	if got < trueDelay-50*sim.Millisecond || got > trueDelay+50*sim.Millisecond {
		t.Fatalf("estimated delay %s, want ≈%s", sim.FormatTime(got), sim.FormatTime(trueDelay))
	}
}

func TestEstimateDelayErrors(t *testing.T) {
	if _, err := EstimateDelay(nil); err == nil {
		t.Fatal("empty curve accepted")
	}
	flat := []LagPoint{{Delay: 0, Normalized: 0}, {Delay: 1, Normalized: -0.5}}
	if _, err := EstimateDelay(flat); err == nil {
		t.Fatal("no positive peak accepted")
	}
}

func TestAlignSamplesReconstructsWindows(t *testing.T) {
	ms := model.NewMetricSeries(sim.Millisecond)
	for b := sim.Time(0); b < 100; b++ {
		ms.AddSpread(b*sim.Millisecond, (b+1)*sim.Millisecond, model.Metrics{Core: float64(b)})
	}
	const delay = 5 * sim.Millisecond
	samples := []power.Sample{
		{Arrival: 15*sim.Millisecond + delay, Watts: 42 + 10}, // window [5,15)
		{Arrival: 200 * sim.Millisecond, Watts: 99},           // beyond series → skipped
	}
	pairs := AlignSamples(samples, 10, 10*sim.Millisecond, ms, delay)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	p := pairs[0]
	if p.WindowStart != 5*sim.Millisecond || p.WindowEnd != 15*sim.Millisecond {
		t.Fatalf("window = [%d,%d)", p.WindowStart, p.WindowEnd)
	}
	if math.Abs(p.ActiveW-42) > 1e-9 {
		t.Fatalf("active = %g, want 42", p.ActiveW)
	}
	// Mean of Core over buckets 5..14 = 9.5.
	if math.Abs(p.M.Core-9.5) > 1e-9 {
		t.Fatalf("aligned metrics Core = %g, want 9.5", p.M.Core)
	}
}

// fakeMeter serves pre-built samples.
type fakeMeter struct {
	samples  []power.Sample
	interval sim.Time
	idle     float64
}

func (f *fakeMeter) Name() string       { return "fake" }
func (f *fakeMeter) Interval() sim.Time { return f.interval }
func (f *fakeMeter) Delay() sim.Time    { return 0 }
func (f *fakeMeter) Scope() power.Scope { return power.ScopeMachine }
func (f *fakeMeter) IdleW() float64     { return f.idle }
func (f *fakeMeter) Read(now sim.Time) []power.Sample {
	var out []power.Sample
	for _, s := range f.samples {
		if s.Arrival <= now {
			out = append(out, s)
		}
	}
	return out
}

func TestRecalibratorLearnsShiftedModel(t *testing.T) {
	// Offline model underestimates (hidden synergy): online samples from
	// the production workload must pull the fit toward truth.
	offline := model.Coefficients{Core: 8, Ins: 1, IncludesChipShare: true}
	truthMem := 500.0

	ms := model.NewMetricSeries(sim.Millisecond)
	rng := sim.NewRand(5)
	var samples []power.Sample
	const delay = 10 * sim.Millisecond
	for b := sim.Time(0); b < 4000; b++ {
		m := model.Metrics{Core: 2 + rng.Float64(), Ins: rng.Float64() * 3, Mem: rng.Float64() * 0.02}
		ms.AddSpread(b*sim.Millisecond, (b+1)*sim.Millisecond, m)
	}
	for w := sim.Time(0); w < 400; w++ {
		lo, hi := int(w*10), int((w+1)*10)
		m := ms.WindowMean(lo, hi)
		truth := 8*m.Core + 1*m.Ins + truthMem*m.Mem
		samples = append(samples, power.Sample{
			Start:   w * 10 * sim.Millisecond,
			Arrival: (w+1)*10*sim.Millisecond + delay,
			Watts:   truth + 30 + rng.NormFloat64(0.2),
		})
	}
	meter := &fakeMeter{samples: samples, interval: 10 * sim.Millisecond, idle: 30}

	var offlineSamples []model.CalSample
	// A couple of offline points with zero mem activity: they cannot
	// teach the mem coefficient.
	for i := 0; i < 4; i++ {
		m := model.Metrics{Core: float64(i + 1), Ins: float64(i)}
		offlineSamples = append(offlineSamples, model.CalSample{
			M: m, MachineActiveW: 8*m.Core + m.Ins, PkgActiveW: math.NaN(),
		})
	}
	r := NewRecalibrator(meter, model.ScopeMachine, offlineSamples)
	r.MaxDelay = 100 * sim.Millisecond

	added := r.Ingest(5*sim.Second, ms, offline)
	if added == 0 {
		t.Fatal("no online samples ingested")
	}
	d, known := r.Delay()
	if !known || d != delay {
		t.Fatalf("estimated delay %v (known=%v), want %v", d, known, delay)
	}
	got, err := r.Refit(offline)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mem-truthMem) > 30 {
		t.Fatalf("refit mem coefficient %g, want ≈%g", got.Mem, truthMem)
	}
	if r.Refits() != 1 {
		t.Fatalf("refits = %d", r.Refits())
	}
	// Second ingest with no new samples is a no-op.
	if n := r.Ingest(5*sim.Second, ms, got); n != 0 {
		t.Fatalf("re-ingest added %d", n)
	}
}

func TestRecalibratorRefusesWithoutSamples(t *testing.T) {
	meter := &fakeMeter{interval: sim.Second}
	r := NewRecalibrator(meter, model.ScopeMachine, nil)
	base := model.Coefficients{Core: 1}
	got, err := r.Refit(base)
	if err == nil {
		t.Fatal("refit without samples succeeded")
	}
	if got != base {
		t.Fatal("failed refit must return base")
	}
}

func TestRecalibratorSetDelaySkipsEstimation(t *testing.T) {
	ms := model.NewMetricSeries(sim.Millisecond)
	for b := sim.Time(0); b < 100; b++ {
		ms.AddSpread(b*sim.Millisecond, (b+1)*sim.Millisecond, model.Metrics{Core: 1})
	}
	meter := &fakeMeter{
		interval: 10 * sim.Millisecond,
		samples: []power.Sample{
			{Arrival: 30 * sim.Millisecond, Watts: 8},
		},
	}
	r := NewRecalibrator(meter, model.ScopeMachine, nil)
	r.SetDelay(20 * sim.Millisecond)
	if n := r.Ingest(sim.Second, ms, model.Coefficients{Core: 8}); n != 1 {
		t.Fatalf("ingest with fixed delay added %d, want 1", n)
	}
}
