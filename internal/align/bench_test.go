package align

import (
	"fmt"
	"testing"

	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// benchCurveInputs builds a Wattsup-shaped alignment problem: nSamples
// coarse meter windows (100 ms) over a 1 ms modeled-power grid, scanned over
// a 201-lag delay range — the shape where the reference implementation's
// per-lag window loop dominates.
func benchCurveInputs(nSamples int) ([]power.Sample, []float64) {
	const meterInterval = 100 * sim.Millisecond
	perWindow := int(meterInterval / sim.Millisecond)
	modelPower, samples := synthSeries(nSamples*perWindow, meterInterval, 30*sim.Millisecond, 50, 9)
	return samples, modelPower
}

func benchmarkCurve(b *testing.B, nSamples int, curve func([]power.Sample, float64, sim.Time, []float64, sim.Time, sim.Time, sim.Time, sim.Time) []LagPoint) {
	samples, modelPower := benchCurveInputs(nSamples)
	if len(samples) < nSamples {
		b.Fatalf("only %d samples built", len(samples))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := curve(samples, 50, 100*sim.Millisecond, modelPower, sim.Millisecond,
			sim.Millisecond, 0, 200*sim.Millisecond)
		if len(c) != 201 {
			b.Fatalf("curve has %d points", len(c))
		}
	}
}

// BenchmarkCorrelationCurve compares the prefix-sum fast path against the
// retained reference implementation at the acceptance sizes.
func BenchmarkCorrelationCurve(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("path=ref/samples=%d", n), func(b *testing.B) {
			benchmarkCurve(b, n, correlationCurveRef)
		})
		b.Run(fmt.Sprintf("path=fast/samples=%d", n), func(b *testing.B) {
			benchmarkCurve(b, n, CorrelationCurve)
		})
	}
}

// benchRecalibrator returns a recalibrator loaded with MaxOnline online
// samples and a realistic offline block, ready to refit.
func benchRecalibrator(b *testing.B) (*Recalibrator, model.Coefficients) {
	b.Helper()
	ms := model.NewMetricSeries(sim.Millisecond)
	rng := sim.NewRand(5)
	const nBuckets = 50000
	for bkt := sim.Time(0); bkt < nBuckets; bkt++ {
		m := model.Metrics{
			Core: 2 + rng.Float64(), Ins: rng.Float64() * 3,
			Mem: rng.Float64() * 0.02, Disk: rng.Float64() * 0.3, Net: rng.Float64() * 0.2,
		}
		ms.AddSpread(bkt*sim.Millisecond, (bkt+1)*sim.Millisecond, m)
	}
	var samples []power.Sample
	for w := sim.Time(0); w < nBuckets/10; w++ {
		lo, hi := int(w*10), int((w+1)*10)
		m := ms.WindowMean(lo, hi)
		truth := 8*m.Core + 1*m.Ins + 500*m.Mem + 3*m.Disk + 5*m.Net
		samples = append(samples, power.Sample{
			Start:   w * 10 * sim.Millisecond,
			Arrival: (w+1)*10*sim.Millisecond + 10*sim.Millisecond,
			Watts:   truth + 30 + rng.NormFloat64(0.2),
		})
	}
	var offline []model.CalSample
	for i := 0; i < 32; i++ {
		m := model.Metrics{Core: float64(i%5 + 1), Ins: float64(i % 3), Disk: float64(i%2) * 0.5}
		offline = append(offline, model.CalSample{M: m, MachineActiveW: 8*m.Core + m.Ins + 3*m.Disk})
	}
	base := model.Coefficients{Core: 8, Ins: 1, IncludesChipShare: true}
	meter := &fakeMeter{samples: samples, interval: 10 * sim.Millisecond, idle: 30}
	r := NewRecalibrator(meter, model.ScopeMachine, offline)
	r.MaxDelay = 100 * sim.Millisecond
	if r.Ingest(sim.Time(nBuckets)*sim.Millisecond, ms, base) == 0 {
		b.Fatal("no samples ingested")
	}
	if r.OnlineCount() != r.MaxOnline {
		b.Fatalf("online window %d, want full %d", r.OnlineCount(), r.MaxOnline)
	}
	return r, base
}

// BenchmarkRefit compares the incremental Gram refit (solve-only) against
// the retained batch reference over the same state: 32 offline + 4000
// online samples, 8 coefficients.
func BenchmarkRefit(b *testing.B) {
	r, base := benchRecalibrator(b)
	b.Run("path=ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.refitReference(base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("path=fast", func(b *testing.B) {
		if r.gram == nil {
			b.Fatal("incremental gram inactive")
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Refit(base); err != nil {
				b.Fatal(err)
			}
		}
	})
}
