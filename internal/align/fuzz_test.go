package align

import (
	"math"
	"testing"

	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// FuzzCrossCorrelation drives CorrelationCurve and EstimateDelay with
// arbitrary finite sample sets and degenerate interval/step/delay
// combinations. The harness asserts the properties the recalibration
// pipeline depends on: the call terminates (no zero-step or overflow
// loops), never panics or divides by zero, and every normalized
// correlation stays within [-1, 1].
func FuzzCrossCorrelation(f *testing.F) {
	f.Add([]byte{10, 50, 20, 90, 30, 10, 40, 70}, int64(sim.Second), int64(sim.Millisecond),
		int64(sim.Millisecond), int64(0), int64(100*sim.Millisecond), 10.0)
	// Degenerate intervals: used to loop forever / divide by zero.
	f.Add([]byte{1, 2, 3}, int64(sim.Second), int64(0), int64(0), int64(-5), int64(5), 0.0)
	f.Add([]byte{}, int64(0), int64(-3), int64(1), int64(0), int64(0), 0.0)
	// Extreme lag range: the loop increment must not overflow.
	f.Add([]byte{255, 0, 128, 7}, int64(sim.Second), int64(sim.Millisecond),
		int64(math.MaxInt64/2), int64(math.MinInt64/4), int64(math.MaxInt64/4), -2.5)
	f.Fuzz(func(t *testing.T, data []byte, meterIv, modelIv, step, minD, maxD int64, idleW float64) {
		if math.IsNaN(idleW) || math.IsInf(idleW, 0) {
			idleW = 0
		}
		const limT = int64(1e15)
		clamp := func(v, lim int64) int64 {
			if v > lim || v < -lim {
				return v % lim
			}
			return v
		}
		minD = clamp(minD, limT)
		maxD = clamp(maxD, limT)
		meterIv = clamp(meterIv, int64(10*sim.Second))
		modelIv = clamp(modelIv, int64(10*sim.Second))
		step = clamp(step, int64(10*sim.Second))
		// Keep the curve small for fuzzing throughput: force the step to
		// cover the lag range in at most 1024 hops (zero/negative steps
		// stay as-is to exercise the library's own guards).
		if maxD > minD {
			minStep := (maxD - minD) / 1024
			if step > 0 && step < minStep {
				step = minStep
			}
			if step <= 0 && modelIv > 0 && modelIv < minStep {
				step = minStep
			}
		}

		var measured []power.Sample
		arrival := int64(0)
		for i := 0; i+1 < len(data) && len(measured) < 64; i += 2 {
			arrival += int64(data[i])*int64(sim.Millisecond) + 1
			measured = append(measured, power.Sample{
				Arrival: arrival,
				Watts:   float64(int8(data[i+1])),
			})
		}
		modelPower := make([]float64, 0, 256)
		for i := 0; i < len(data) && i < 256; i++ {
			modelPower = append(modelPower, float64(int8(data[i])))
		}

		curve := CorrelationCurve(measured, idleW, meterIv, modelPower, modelIv, step, minD, maxD)
		if len(curve) > 1030 {
			t.Fatalf("curve has %d points, expected at most ~1025", len(curve))
		}
		for _, p := range curve {
			if math.IsNaN(p.Normalized) || p.Normalized < -1-1e-9 || p.Normalized > 1+1e-9 {
				t.Fatalf("normalized correlation %v outside [-1, 1] at delay %d", p.Normalized, p.Delay)
			}
			if math.IsNaN(p.Raw) || math.IsInf(p.Raw, 0) {
				t.Fatalf("non-finite raw correlation at delay %d", p.Delay)
			}
			if p.Delay < minD || p.Delay > maxD {
				t.Fatalf("curve point at delay %d outside [%d, %d]", p.Delay, minD, maxD)
			}
		}
		if d, err := EstimateDelay(curve); err == nil {
			if d < minD || d > maxD {
				t.Fatalf("estimated delay %d outside scanned range [%d, %d]", d, minD, maxD)
			}
		}
	})
}
