package align

import (
	"math"
	"testing"

	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// curveFuzzCase is one massaged CorrelationCurve input set, shared between
// the fuzz target and the fast-vs-reference property test (which replays
// the corpus seeds below through the same massaging).
type curveFuzzCase struct {
	measured   []power.Sample
	modelPower []float64
	idleW      float64
	meterIv    sim.Time
	modelIv    sim.Time
	step       sim.Time
	minD, maxD sim.Time
}

// curveCorpusSeeds are the f.Add tuples of FuzzCrossCorrelation, exported to
// the property tests so corpus coverage and fast-path agreement checks stay
// in lockstep.
var curveCorpusSeeds = []struct {
	data                               []byte
	meterIv, modelIv, step, minD, maxD int64
	idleW                              float64
}{
	{[]byte{10, 50, 20, 90, 30, 10, 40, 70}, int64(sim.Second), int64(sim.Millisecond),
		int64(sim.Millisecond), 0, int64(100 * sim.Millisecond), 10.0},
	// Degenerate intervals: used to loop forever / divide by zero.
	{[]byte{1, 2, 3}, int64(sim.Second), 0, 0, -5, 5, 0.0},
	{[]byte{}, 0, -3, 1, 0, 0, 0.0},
	// Extreme lag range: the loop increment must not overflow.
	{[]byte{255, 0, 128, 7}, int64(sim.Second), int64(sim.Millisecond),
		math.MaxInt64 / 2, math.MinInt64 / 4, math.MaxInt64 / 4, -2.5},
}

// massageCurveInputs applies the fuzz harness's clamping and decoding to raw
// fuzz inputs, producing a bounded CorrelationCurve call.
func massageCurveInputs(data []byte, meterIv, modelIv, step, minD, maxD int64, idleW float64) curveFuzzCase {
	if math.IsNaN(idleW) || math.IsInf(idleW, 0) {
		idleW = 0
	}
	const limT = int64(1e15)
	clamp := func(v, lim int64) int64 {
		if v > lim || v < -lim {
			return v % lim
		}
		return v
	}
	minD = clamp(minD, limT)
	maxD = clamp(maxD, limT)
	meterIv = clamp(meterIv, int64(10*sim.Second))
	modelIv = clamp(modelIv, int64(10*sim.Second))
	step = clamp(step, int64(10*sim.Second))
	// Keep the curve small for fuzzing throughput: force the step to
	// cover the lag range in at most 1024 hops (zero/negative steps
	// stay as-is to exercise the library's own guards).
	if maxD > minD {
		minStep := (maxD - minD) / 1024
		if step > 0 && step < minStep {
			step = minStep
		}
		if step <= 0 && modelIv > 0 && modelIv < minStep {
			step = minStep
		}
	}

	var measured []power.Sample
	arrival := int64(0)
	for i := 0; i+1 < len(data) && len(measured) < 64; i += 2 {
		arrival += int64(data[i])*int64(sim.Millisecond) + 1
		measured = append(measured, power.Sample{
			Arrival: arrival,
			Watts:   float64(int8(data[i+1])),
		})
	}
	modelPower := make([]float64, 0, 256)
	for i := 0; i < len(data) && i < 256; i++ {
		modelPower = append(modelPower, float64(int8(data[i])))
	}
	return curveFuzzCase{
		measured: measured, modelPower: modelPower, idleW: idleW,
		meterIv: meterIv, modelIv: modelIv, step: step, minD: minD, maxD: maxD,
	}
}

// FuzzCrossCorrelation drives CorrelationCurve and EstimateDelay with
// arbitrary finite sample sets and degenerate interval/step/delay
// combinations, exercising both the prefix-sum fast path and the reference
// implementation. The harness asserts the properties the recalibration
// pipeline depends on: the calls terminate (no zero-step or overflow
// loops), never panic or divide by zero, every normalized correlation stays
// within [-1, 1], and the two paths agree on curve structure (length and
// lag grid — value agreement on benign inputs is the property tests' job,
// since adversarial magnitudes can amplify reassociation noise without
// bound).
func FuzzCrossCorrelation(f *testing.F) {
	for _, s := range curveCorpusSeeds {
		f.Add(s.data, s.meterIv, s.modelIv, s.step, s.minD, s.maxD, s.idleW)
	}
	f.Fuzz(func(t *testing.T, data []byte, meterIv, modelIv, step, minD, maxD int64, idleW float64) {
		c := massageCurveInputs(data, meterIv, modelIv, step, minD, maxD, idleW)

		curve := CorrelationCurve(c.measured, c.idleW, c.meterIv, c.modelPower, c.modelIv, c.step, c.minD, c.maxD)
		ref := correlationCurveRef(c.measured, c.idleW, c.meterIv, c.modelPower, c.modelIv, c.step, c.minD, c.maxD)
		if len(curve) > 1030 {
			t.Fatalf("curve has %d points, expected at most ~1025", len(curve))
		}
		if len(curve) != len(ref) {
			t.Fatalf("fast curve has %d points, reference %d", len(curve), len(ref))
		}
		for which, cv := range [][]LagPoint{curve, ref} {
			for i, p := range cv {
				if math.IsNaN(p.Normalized) || p.Normalized < -1-1e-9 || p.Normalized > 1+1e-9 {
					t.Fatalf("path %d: normalized correlation %v outside [-1, 1] at delay %d", which, p.Normalized, p.Delay)
				}
				if math.IsNaN(p.Raw) || math.IsInf(p.Raw, 0) {
					t.Fatalf("path %d: non-finite raw correlation at delay %d", which, p.Delay)
				}
				if p.Delay < c.minD || p.Delay > c.maxD {
					t.Fatalf("path %d: curve point at delay %d outside [%d, %d]", which, p.Delay, c.minD, c.maxD)
				}
				if p.Delay != ref[i].Delay {
					t.Fatalf("lag grids diverge at %d: fast %d vs ref %d", i, curve[i].Delay, ref[i].Delay)
				}
			}
		}
		if d, err := EstimateDelay(curve); err == nil {
			if d < c.minD || d > c.maxD {
				t.Fatalf("estimated delay %d outside scanned range [%d, %d]", d, c.minD, c.maxD)
			}
		}
	})
}
