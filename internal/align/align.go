// Package align implements §3.2: aligning delayed power-meter readings with
// real-time model estimates via signal-processing cross-correlation (Eq. 4),
// and using the aligned pairs to recalibrate the power model online.
//
// Meter samples carry only an arrival timestamp for online purposes; the
// true measurement window is arrival − delay − interval, with the delay
// unknown until estimated here.
package align

import (
	"fmt"
	"math"

	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// LagPoint is one point of the cross-correlation curve over hypothetical
// measurement delays (the curves of Figure 2).
type LagPoint struct {
	Delay sim.Time
	// Raw is the paper's Eq. 4 inner product.
	Raw float64
	// Normalized is the mean-subtracted, variance-normalized correlation
	// used for robust peak picking.
	Normalized float64
}

// modelWindowMean averages the modeled active power series (1-bucket
// resolution `interval`) over [t0, t1). Returns ok=false when the window
// falls outside the series.
func modelWindowMean(modelPower []float64, interval, t0, t1 sim.Time) (float64, bool) {
	if t1 <= t0 || t0 < 0 {
		return 0, false
	}
	lo := int(t0 / interval)
	hi := int((t1 + interval - 1) / interval)
	if hi > len(modelPower) {
		return 0, false
	}
	var sum float64
	n := 0
	for b := lo; b < hi; b++ {
		sum += modelPower[b]
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// prefixMeans answers modeled-power window means in O(1) via a prefix-sum
// table: prefix[i] holds the running sum of power[:i], so the mean over
// buckets [lo, hi) is a prefix difference and one divide instead of a bucket
// loop. The table is built once per CorrelationCurve call — O(len(power))
// amortized over O(lags × samples) queries.
type prefixMeans struct {
	interval sim.Time
	prefix   []float64
}

func newPrefixMeans(power []float64, interval sim.Time) prefixMeans {
	prefix := make([]float64, len(power)+1)
	// Neumaier-compensated running sum: construction is off the per-(lag,
	// sample) hot path, and compensation keeps each stored prefix within
	// ~1 ulp of the true sum, so window means from prefix differences stay
	// within rounding noise of the reference bucket loop even for long
	// series (the fast-vs-reference property tests pin this down).
	var sum, comp float64
	for i, v := range power {
		t := sum + v
		if a, b := math.Abs(sum), math.Abs(v); a >= b {
			comp += (sum - t) + v
		} else {
			comp += (v - t) + sum
		}
		sum = t
		prefix[i+1] = sum + comp
	}
	return prefixMeans{interval: interval, prefix: prefix}
}

// windowMean mirrors modelWindowMean's window semantics exactly (same
// bucket rounding, same out-of-range rejection); only the summation
// differs.
func (p prefixMeans) windowMean(t0, t1 sim.Time) (float64, bool) {
	if t1 <= t0 || t0 < 0 {
		return 0, false
	}
	lo := int(t0 / p.interval)
	hi := int((t1 + p.interval - 1) / p.interval)
	if hi >= len(p.prefix) || hi <= lo {
		return 0, false
	}
	return (p.prefix[hi] - p.prefix[lo]) / float64(hi-lo), true
}

// lagCount bounds the number of curve points for preallocation. It is only
// a capacity hint — the scan loop (with its overflow guard) remains
// authoritative — so it computes in float64 to dodge Time overflow on
// extreme ranges and clamps to a sane ceiling.
func lagCount(minDelay, maxDelay, step sim.Time) int {
	if step <= 0 || maxDelay < minDelay {
		return 0
	}
	n := (float64(maxDelay)-float64(minDelay))/float64(step) + 1
	const maxPrealloc = 1 << 20
	if !(n >= 0) {
		return 0
	}
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// CorrelationCurve evaluates measurement/model cross-correlation at every
// hypothetical delay in [minDelay, maxDelay] stepped by step (negative
// delays hypothesize measurements arriving before the activity they
// describe, as in Figure 2's x-axis). measured samples keep their raw
// readings; idleW is subtracted here. modelPower is the modeled active
// power per interval-wide bucket.
//
// This is the O(1)-window fast path: window means come from a prefix-sum
// table, making the scan O(lags × samples + len(modelPower)) instead of the
// reference implementation's O(lags × samples × window). Curve values may
// differ from correlationCurveRef by rounding noise only (the prefix
// difference reassociates the window summation); the per-lag statistics are
// otherwise accumulated in the identical order.
func CorrelationCurve(measured []power.Sample, idleW float64, meterInterval sim.Time,
	modelPower []float64, modelInterval sim.Time, step, minDelay, maxDelay sim.Time) []LagPoint {

	// Degenerate intervals would divide by zero in the bucket arithmetic
	// (and a zero step would loop forever); there is no meaningful curve.
	if meterInterval <= 0 || modelInterval <= 0 {
		return nil
	}
	if step <= 0 {
		step = modelInterval
	}
	if maxDelay < minDelay {
		return nil
	}
	pm := newPrefixMeans(modelPower, modelInterval)
	curve := make([]LagPoint, 0, lagCount(minDelay, maxDelay, step))
	for d := minDelay; d <= maxDelay; {
		var raw, sx, sy, sxy, sxx, syy float64
		n := 0
		for _, s := range measured {
			end := s.Arrival - d
			start := end - meterInterval
			mp, ok := pm.windowMean(start, end)
			if !ok {
				continue
			}
			x := s.Watts - idleW
			raw += x * mp
			sx += x
			sy += mp
			sxy += x * mp
			sxx += x * x
			syy += mp * mp
			n++
		}
		norm := 0.0
		if n >= 2 {
			cov := sxy - sx*sy/float64(n)
			vx := sxx - sx*sx/float64(n)
			vy := syy - sy*sy/float64(n)
			if vx > 0 && vy > 0 {
				norm = cov / math.Sqrt(vx*vy)
				// Degenerate windows (all means essentially equal) leave
				// vx/vy as pure cancellation residue, and the ratio can
				// then exceed Cauchy–Schwarz's bound; clamp to the
				// documented range.
				if norm > 1 {
					norm = 1
				} else if norm < -1 {
					norm = -1
				}
			}
		}
		curve = append(curve, LagPoint{Delay: d, Raw: raw, Normalized: norm})
		next := d + step
		if next <= d { // overflow guard: a huge step must still terminate
			break
		}
		d = next
	}
	return curve
}

// correlationCurveRef is the original O(lags × samples × window)
// implementation, retained as the reference the fast path is
// property-tested against. The only change from the original is the
// range clamp below, which fuzzing showed is needed in both paths:
// even exact window means leave vx/vy as cancellation residue on
// degenerate inputs, letting the ratio exceed 1.
func correlationCurveRef(measured []power.Sample, idleW float64, meterInterval sim.Time,
	modelPower []float64, modelInterval sim.Time, step, minDelay, maxDelay sim.Time) []LagPoint {

	if meterInterval <= 0 || modelInterval <= 0 {
		return nil
	}
	if step <= 0 {
		step = modelInterval
	}
	var curve []LagPoint
	for d := minDelay; d <= maxDelay; {
		var raw, sx, sy, sxy, sxx, syy float64
		n := 0
		for _, s := range measured {
			end := s.Arrival - d
			start := end - meterInterval
			mp, ok := modelWindowMean(modelPower, modelInterval, start, end)
			if !ok {
				continue
			}
			x := s.Watts - idleW
			raw += x * mp
			sx += x
			sy += mp
			sxy += x * mp
			sxx += x * x
			syy += mp * mp
			n++
		}
		norm := 0.0
		if n >= 2 {
			cov := sxy - sx*sy/float64(n)
			vx := sxx - sx*sx/float64(n)
			vy := syy - sy*sy/float64(n)
			if vx > 0 && vy > 0 {
				norm = cov / math.Sqrt(vx*vy)
				if norm > 1 {
					norm = 1
				} else if norm < -1 {
					norm = -1
				}
			}
		}
		curve = append(curve, LagPoint{Delay: d, Raw: raw, Normalized: norm})
		next := d + step
		if next <= d { // overflow guard: a huge step must still terminate
			break
		}
		d = next
	}
	return curve
}

// EstimateDelay returns the hypothetical delay with the highest normalized
// cross-correlation — the paper's estimate of the meter's delivery lag.
//
// Tie-breaking: the scan keeps the incumbent on equality (strict >), so
// among equal normalized peaks the earliest lag in curve order wins. This
// is a deliberate, tested contract: plateaus resolve to their leading edge
// regardless of how the curve values were summed, which is what keeps the
// fast and reference curve paths agreeing on the estimate.
func EstimateDelay(curve []LagPoint) (sim.Time, error) {
	if len(curve) == 0 {
		return 0, fmt.Errorf("align: empty correlation curve")
	}
	best := curve[0]
	for _, p := range curve[1:] {
		if p.Normalized > best.Normalized {
			best = p
		}
	}
	if best.Normalized <= 0 {
		return 0, fmt.Errorf("align: no positive correlation peak (max %.3f)", best.Normalized)
	}
	return best.Delay, nil
}

// AlignedPair is a measurement matched to the system metrics over its
// estimated true window.
type AlignedPair struct {
	WindowStart sim.Time
	WindowEnd   sim.Time
	ActiveW     float64
	M           model.Metrics
}

// AlignSamples converts delivered meter samples into aligned
// (metrics, active power) pairs using the estimated delay. Samples whose
// reconstructed window is not fully covered by the metric series are
// skipped.
func AlignSamples(measured []power.Sample, idleW float64, meterInterval sim.Time,
	ms *model.MetricSeries, delay sim.Time) []AlignedPair {

	out := make([]AlignedPair, 0, len(measured))
	horizon := sim.Time(ms.Len()) * ms.Interval()
	for _, s := range measured {
		end := s.Arrival - delay
		start := end - meterInterval
		if start < 0 || end > horizon {
			continue
		}
		lo := int(start / ms.Interval())
		hi := int(end / ms.Interval())
		if hi <= lo {
			continue
		}
		out = append(out, AlignedPair{
			WindowStart: start,
			WindowEnd:   end,
			ActiveW:     s.Watts - idleW,
			M:           ms.WindowMean(lo, hi),
		})
	}
	return out
}
