package calib

import (
	"math"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/power"
)

// TestCalibrationSeedRobustness recalibrates the same machine under several
// seeds — different microbenchmark interleavings, hence differently noisy
// counter samples — and checks the fitted model stays stable: every seed
// must recover the hidden core coefficient within the same band, Eq. 2 must
// always out-fit Eq. 1, and the coefficient spread across seeds must stay
// small relative to the coefficient itself. A fit that only works at seed 1
// would be curve-fitting the noise, not the power model.
func TestCalibrationSeedRobustness(t *testing.T) {
	p := power.MustProfile(cpu.SandyBridge)
	seeds := []uint64{1, 2, 5, 9}
	var cores, chips []float64
	for _, seed := range seeds {
		cfg := fastConfig()
		cfg.Seed = seed
		res, err := Calibrate(cpu.SandyBridge, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.FitErrEq2 >= res.FitErrEq1 {
			t.Errorf("seed %d: Eq2 fit %.3f not better than Eq1 %.3f",
				seed, res.FitErrEq2, res.FitErrEq1)
		}
		if math.Abs(res.Eq2.Core-p.CoreW) > 0.35*p.CoreW {
			t.Errorf("seed %d: core coefficient %.2f far from hidden %.2f",
				seed, res.Eq2.Core, p.CoreW)
		}
		if res.FitErrEq2 > 0.10 {
			t.Errorf("seed %d: fit error %.1f%% too high", seed, 100*res.FitErrEq2)
		}
		cores = append(cores, res.Eq2.Core)
		chips = append(chips, res.Eq2.Chip)
	}
	spread := func(xs []float64) float64 {
		lo, hi := xs[0], xs[0]
		for _, x := range xs[1:] {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return (hi - lo) / math.Max(math.Abs(lo), 1e-9)
	}
	if s := spread(cores); s > 0.25 {
		t.Errorf("core coefficient spread %.1f%% across seeds (%v)", 100*s, cores)
	}
	if s := spread(chips); s > 0.60 {
		t.Errorf("chip coefficient spread %.1f%% across seeds (%v)", 100*s, chips)
	}
}

// TestCalibrationLongerWindowsTightenFit doubles warmup and measurement
// windows and checks the fit does not get worse: more averaging over the
// same stationary workloads can only reduce meter-window noise.
func TestCalibrationLongerWindowsTightenFit(t *testing.T) {
	short, err := Calibrate(cpu.Woodcrest, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	long := fastConfig()
	long.WarmupSec = 2.0
	long.WindowSec = 2.0
	res, err := Calibrate(cpu.Woodcrest, long)
	if err != nil {
		t.Fatal(err)
	}
	// Allow a small epsilon: the fit is already near its floor and window
	// boundaries shift which scheduler periods land inside.
	if res.FitErrEq2 > short.FitErrEq2+0.01 {
		t.Errorf("longer windows worsened fit: %.4f -> %.4f",
			short.FitErrEq2, res.FitErrEq2)
	}
}
