// Package calib performs the paper's offline model calibration (§4.1): it
// runs each calibration microbenchmark at several load levels on a freshly
// simulated machine, pairs steady-state system metrics with measured active
// power, and least-square-fits the model coefficients — once without the
// chip-share term (Eq. 1, the paper's Approach #1) and once with it
// (Eq. 2, Approach #2).
//
// Offline calibration is a controlled experiment, so it may use the true
// window timestamps of meter samples; only *online* recalibration is
// restricted to arrival times plus an estimated delay.
package calib

import (
	"fmt"
	"math"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// Config tunes a calibration run.
type Config struct {
	// Seed drives all randomness (meter noise streams).
	Seed uint64
	// WarmupSec and WindowSec bound the measured steady-state window of
	// each configuration.
	WarmupSec float64
	WindowSec float64
}

// DefaultConfig returns the standard calibration setup.
func DefaultConfig() Config {
	return Config{Seed: 1, WarmupSec: 1.0, WindowSec: 2.0}
}

// Result is a machine's offline calibration output.
type Result struct {
	Spec cpu.MachineSpec
	// Eq1 is the Approach #1 model (no chip-share column); Eq2 the
	// Approach #2 model.
	Eq1, Eq2 model.Coefficients
	// Samples are the calibration observations (reused as the offline
	// half of online recalibration).
	Samples []model.CalSample
	// Mmax is the maximum observed value of each system-wide metric,
	// for the C·Mmax table of §4.1.
	Mmax model.Metrics
	// IdleW is the machine idle power (Cidle).
	IdleW float64
	// FitErrEq1 and FitErrEq2 are mean absolute relative fit errors over
	// the calibration samples.
	FitErrEq1, FitErrEq2 float64
}

// HasChipMeter reports whether the machine model carries an on-chip power
// meter: in the paper's testbed, only SandyBridge does.
func HasChipMeter(spec cpu.MachineSpec) bool { return spec.Name == "SandyBridge" }

// Calibrate runs the full §4.1 procedure for a machine.
func Calibrate(spec cpu.MachineSpec, cfg Config) (*Result, error) {
	profile, err := power.Profiles(spec)
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec, IdleW: profile.MachineIdleW}

	benches := workload.MicroBenches()
	for bi, mb := range benches {
		for li, load := range workload.CalibrationLoadLevels {
			s, err := runConfig(spec, profile, mb, load, cfg, uint64(bi*10+li))
			if err != nil {
				return nil, fmt.Errorf("calib: %s@%.0f%%: %w", mb.Name, load*100, err)
			}
			res.Samples = append(res.Samples, s)
			res.Mmax = res.Mmax.Max(s.M)
		}
	}

	// One pass over the samples serves both fits: Eq. 1's normal equations
	// are the Eq. 2 Gram with the chip-share column projected out (machine
	// layout: core, ins, float, cache, mem, chip, disk, net — drop column
	// 5), bit-identical to a direct Eq. 1 accumulation.
	eq2Gram, err := model.FitGram(res.Samples, model.FitPlan{
		Scope: model.ScopeMachine, IncludeChipShare: true,
	})
	if err != nil {
		return nil, fmt.Errorf("calib: Eq2 fit: %w", err)
	}
	res.Eq1, err = model.FitFromGram(eq2Gram.Subset([]int{0, 1, 2, 3, 4, 6, 7}), model.FitOptions{
		Scope: model.ScopeMachine, IncludeChipShare: false, IdleW: profile.MachineIdleW,
	})
	if err != nil {
		return nil, fmt.Errorf("calib: Eq1 fit: %w", err)
	}
	res.Eq2, err = model.FitFromGram(eq2Gram, model.FitOptions{
		Scope: model.ScopeMachine, IncludeChipShare: true, IdleW: profile.MachineIdleW,
	})
	if err != nil {
		return nil, fmt.Errorf("calib: Eq2 fit: %w", err)
	}
	res.FitErrEq1 = model.FitError(res.Eq1, res.Samples, model.ScopeMachine)
	res.FitErrEq2 = model.FitError(res.Eq2, res.Samples, model.ScopeMachine)
	return res, nil
}

// runConfig measures one (microbenchmark, load level) configuration on a
// fresh machine and returns its calibration sample.
func runConfig(spec cpu.MachineSpec, profile power.TrueProfile, mb workload.MicroBench,
	load float64, cfg Config, salt uint64) (model.CalSample, error) {

	eng := sim.NewEngine()
	k, err := kernel.New("calib", spec, profile, eng, nil)
	if err != nil {
		return model.CalSample{}, err
	}
	fac := core.Attach(k, model.Coefficients{}, core.Config{Approach: core.ApproachChipShare})
	wattsup := power.NewWattsupMeter(k.Rec, cfg.Seed*1000+salt)
	chip := power.NewChipMeter(k.Rec, cfg.Seed*2000+salt)

	mb.SpawnLoop(k, spec.Cores(), load)

	warm := sim.Time(cfg.WarmupSec * float64(sim.Second))
	end := warm + sim.Time(cfg.WindowSec*float64(sim.Second))
	// Run past the end so the delayed Wattsup samples for the window are
	// all delivered.
	eng.RunUntil(end + 2*sim.Second)

	ms := fac.Metrics()
	lo := int(warm / ms.Interval())
	hi := int(end / ms.Interval())
	s := model.CalSample{M: ms.WindowMean(lo, hi), Weight: 1}

	s.MachineActiveW, err = meterWindowMean(wattsup, eng.Now(), warm, end)
	if err != nil {
		return s, err
	}
	if HasChipMeter(spec) {
		s.PkgActiveW, err = meterWindowMean(chip, eng.Now(), warm, end)
		if err != nil {
			return s, err
		}
	} else {
		s.PkgActiveW = math.NaN()
	}
	return s, nil
}

// meterWindowMean averages a meter's active power over [t0, t1) using true
// window timestamps (legitimate for offline calibration).
func meterWindowMean(m power.Meter, now, t0, t1 sim.Time) (float64, error) {
	var sum float64
	n := 0
	for _, s := range m.Read(now) {
		if s.Start >= t0 && s.Start+m.Interval() <= t1 {
			sum += s.Watts - m.IdleW()
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("calib: no %s samples in window", m.Name())
	}
	return sum / float64(n), nil
}
