package calib

import (
	"math"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
)

// fastConfig shortens windows for unit tests; bounds stay aligned to the
// Wattsup meter's one-second windows.
func fastConfig() Config { return Config{Seed: 1, WarmupSec: 1.0, WindowSec: 1.0} }

func TestCalibrateSandyBridge(t *testing.T) {
	res, err := Calibrate(cpu.SandyBridge, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Eq1: %v (fit err %.1f%%)", res.Eq1, 100*res.FitErrEq1)
	t.Logf("Eq2: %v (fit err %.1f%%)", res.Eq2, 100*res.FitErrEq2)
	t.Logf("Mmax: %+v", res.Mmax)
	p := power.MustProfile(cpu.SandyBridge)

	if res.IdleW != p.MachineIdleW {
		t.Errorf("IdleW = %g, want %g", res.IdleW, p.MachineIdleW)
	}
	if len(res.Samples) != 32 {
		t.Fatalf("samples = %d, want 8 benches × 4 loads", len(res.Samples))
	}
	// The Eq. 2 fit should recover the hidden linear terms reasonably:
	// the utilization coefficient near CoreW, the chip-share coefficient
	// near the chip maintenance power.
	if math.Abs(res.Eq2.Core-p.CoreW) > 0.35*p.CoreW {
		t.Errorf("Eq2 core coefficient %.2f far from hidden CoreW %.2f", res.Eq2.Core, p.CoreW)
	}
	if math.Abs(res.Eq2.Chip-p.ChipMaintW) > 0.5*p.ChipMaintW {
		t.Errorf("Eq2 chip coefficient %.2f far from hidden maintenance %.2f", res.Eq2.Chip, p.ChipMaintW)
	}
	// Eq. 2 must fit the calibration set better than Eq. 1 (which has no
	// column for maintenance power).
	if res.FitErrEq2 >= res.FitErrEq1 {
		t.Errorf("Eq2 fit error %.3f not better than Eq1 %.3f", res.FitErrEq2, res.FitErrEq1)
	}
	if res.FitErrEq2 > 0.08 {
		t.Errorf("Eq2 calibration fit error %.1f%% too high", 100*res.FitErrEq2)
	}
	// SandyBridge carries the on-chip meter: package targets present.
	for i, s := range res.Samples {
		if math.IsNaN(s.PkgActiveW) {
			t.Fatalf("sample %d missing package power", i)
		}
	}
}

func TestCalibrateAllMachinesHaveSaneCoefficients(t *testing.T) {
	for _, spec := range cpu.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Calibrate(spec, fastConfig())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s Eq2: %v (fit err %.1f%%)", spec.Name, res.Eq2, 100*res.FitErrEq2)
			if res.Eq2.Core <= 0 {
				t.Errorf("non-positive core coefficient %g", res.Eq2.Core)
			}
			if res.Eq2.Chip <= 0 {
				t.Errorf("non-positive chip-share coefficient %g", res.Eq2.Chip)
			}
			if res.FitErrEq2 > 0.10 {
				t.Errorf("fit error %.1f%% too high", 100*res.FitErrEq2)
			}
			if HasChipMeter(spec) != (spec.Name == "SandyBridge") {
				t.Error("chip meter presence wrong")
			}
			if !math.IsNaN(res.Samples[0].PkgActiveW) && spec.Name != "SandyBridge" {
				t.Error("non-SandyBridge machine has package measurements")
			}
			// Mmax sanity: utilization can't exceed the core count.
			// The summed chip share may transiently exceed the chip
			// count — Eq. 3 reads stale sibling samples without
			// synchronization — but not wildly.
			if res.Mmax.Core > float64(spec.Cores())+0.01 {
				t.Errorf("Mmax.Core = %g exceeds core count", res.Mmax.Core)
			}
			if res.Mmax.Chip > 1.6*float64(spec.Chips) {
				t.Errorf("Mmax.Chip = %g far above chip count %d", res.Mmax.Chip, spec.Chips)
			}
		})
	}
}

func TestCalibrationDeterminism(t *testing.T) {
	a, err := Calibrate(cpu.SandyBridge, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(cpu.SandyBridge, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Eq2 != b.Eq2 {
		t.Fatalf("calibration not deterministic:\n%v\n%v", a.Eq2, b.Eq2)
	}
}

var _ = model.Coefficients{} // keep import for future assertions
