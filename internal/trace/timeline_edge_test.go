package trace

import (
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/sim"
)

// TestTimelineDefaultWidth renders with Width unset and checks the axis
// falls back to 72 cells.
func TestTimelineDefaultWidth(t *testing.T) {
	c := capture(t)
	out := Timeline{}.Render(c)
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			j := strings.LastIndexByte(line, '|')
			if j-i-1 != 72 {
				t.Fatalf("default lane width %d, want 72: %q", j-i-1, line)
			}
		}
	}
}

// TestTimelineZeroSpan renders a container whose entire trace collapses to
// a single instant: the span clamp must prevent a division by zero and
// every mark must land in the first cell.
func TestTimelineZeroSpan(t *testing.T) {
	c := &core.Container{
		Label: "instant",
		Intervals: []core.TraceInterval{
			{Task: "httpd", Start: 5 * sim.Millisecond, End: 5 * sim.Millisecond},
		},
		Trace: []core.TraceEvent{
			{T: 5 * sim.Millisecond, Kind: core.TraceBind, Task: "httpd"},
		},
	}
	out := Timeline{Width: 20}.Render(c)
	if !strings.Contains(out, "request instant: 0ns total") {
		t.Fatalf("zero-span header wrong:\n%s", out)
	}
}

// TestTimelineStagelessContainer renders a container that has intervals
// and events but no recorded stages (no attribution periods landed): the
// renderer must skip the unknown lanes rather than panic, and still emit
// the header, axis and legend.
func TestTimelineStagelessContainer(t *testing.T) {
	c := &core.Container{
		Label: "ghost",
		Intervals: []core.TraceInterval{
			{Task: "nowhere", Start: 0, End: sim.Millisecond},
		},
		Trace: []core.TraceEvent{
			{T: sim.Millisecond / 2, Kind: core.TraceFork, Task: "nowhere"},
		},
	}
	out := Timeline{Width: 16}.Render(c)
	if strings.Contains(out, "nowhere") {
		t.Fatalf("stage-less task got a lane:\n%s", out)
	}
	for _, want := range []string{"request ghost", "+----------------+", "marks:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestEventLogOrigin checks offsets are taken relative to Origin, including
// events that precede it (negative offsets).
func TestEventLogOrigin(t *testing.T) {
	c := &core.Container{
		Label: "r",
		Trace: []core.TraceEvent{
			{T: 3 * sim.Millisecond, Kind: core.TraceExit, Task: "b", Detail: "late"},
			{T: sim.Millisecond, Kind: core.TraceBind, Task: "a", Detail: "early"},
		},
	}
	log := Timeline{Origin: 2 * sim.Millisecond}.EventLog(c)
	lines := strings.Split(strings.TrimSpace(log), "\n")
	if len(lines) != 2 {
		t.Fatalf("event log lines = %d, want 2:\n%s", len(lines), log)
	}
	// Sorted by time: the earlier event (1 ms before origin) first, with a
	// negative offset.
	if !strings.Contains(lines[0], "-") || !strings.Contains(lines[0], "early") {
		t.Fatalf("first line should be the pre-origin event: %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.000ms") || !strings.Contains(lines[1], "late") {
		t.Fatalf("second line should be the post-origin event: %q", lines[1])
	}
}
