// Package trace renders captured request executions as textual timelines in
// the style of the paper's Figure 4: one lane per server component, with
// darkened spans for active execution, annotated with each stage's mean
// power and energy and the identified data/control-flow events.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"powercontainers/internal/core"
	"powercontainers/internal/sim"
)

// Timeline builds the Figure 4 rendering for one traced container.
type Timeline struct {
	// Width is the number of character cells the time axis spans.
	Width int
	// Origin is subtracted from every timestamp (usually the request's
	// arrival time).
	Origin sim.Time
}

// Render draws the container's execution. The container must have been
// traced (EnableTrace before execution).
func (tl Timeline) Render(c *core.Container) string {
	width := tl.Width
	if width <= 0 {
		width = 72
	}
	if len(c.Intervals) == 0 {
		return "(no trace intervals; was tracing enabled before the run?)\n"
	}

	start, end := c.Intervals[0].Start, c.Intervals[0].End
	for _, iv := range c.Intervals {
		if iv.Start < start {
			start = iv.Start
		}
		if iv.End > end {
			end = iv.End
		}
	}
	for _, ev := range c.Trace {
		if ev.T < start {
			start = ev.T
		}
		if ev.T > end {
			end = ev.T
		}
	}
	span := end - start
	if span <= 0 {
		span = 1
	}
	cell := func(t sim.Time) int {
		i := int(float64(t-start) / float64(span) * float64(width-1))
		if i < 0 {
			i = 0
		}
		if i >= width {
			i = width - 1
		}
		return i
	}

	// Component lanes in first-seen order, matching stage order.
	stages := c.Stages()
	lanes := make(map[string][]rune, len(stages))
	var order []string
	for _, s := range stages {
		order = append(order, s.Task)
		row := make([]rune, width)
		for i := range row {
			row[i] = '.'
		}
		lanes[s.Task] = row
	}
	for _, iv := range c.Intervals {
		row, ok := lanes[iv.Task]
		if !ok {
			continue
		}
		lo, hi := cell(iv.Start), cell(iv.End)
		for i := lo; i <= hi; i++ {
			row[i] = '#'
		}
	}
	// Mark flow events on the owning component's lane.
	marks := map[core.TraceEventKind]rune{
		core.TraceBind: 'B', core.TraceFork: 'F', core.TraceExit: 'X', core.TraceIO: 'I',
	}
	for _, ev := range c.Trace {
		if row, ok := lanes[ev.Task]; ok {
			row[cell(ev.T)] = marks[ev.Kind]
		}
	}

	nameWidth := 0
	for _, n := range order {
		if len(n) > nameWidth {
			nameWidth = len(n)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "request %s: %s total, %.2f J\n", c.Label,
		sim.FormatTime(end-start), c.EnergyJ())
	byName := map[string]core.StageStat{}
	for _, s := range stages {
		byName[s.Task] = s
	}
	for _, name := range order {
		s := byName[name]
		fmt.Fprintf(&b, "%-*s |%s| %5.1f W %6.2f J\n",
			nameWidth, name, string(lanes[name]), s.MeanPowerW(), s.EnergyJ)
	}
	// Time axis.
	axis := make([]rune, width)
	for i := range axis {
		axis[i] = '-'
	}
	fmt.Fprintf(&b, "%-*s +%s+\n", nameWidth, "", string(axis))
	fmt.Fprintf(&b, "%-*s  %-*s%s\n", nameWidth, "", width-10,
		sim.FormatTime(0), sim.FormatTime(end-start))
	b.WriteString("marks: # active  B context bind  F fork  X exit  I disk/net I/O\n")
	return b.String()
}

// EventLog lists the flow events with offsets from the origin.
func (tl Timeline) EventLog(c *core.Container) string {
	events := append([]core.TraceEvent(nil), c.Trace...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%12s  %-5s %-8s %s\n",
			sim.FormatTime(ev.T-tl.Origin), ev.Kind, ev.Task, ev.Detail)
	}
	return b.String()
}
