package trace

import (
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// capture runs one traced WeBWorK request and returns its container.
func capture(t *testing.T) *core.Container {
	t.Helper()
	eng := sim.NewEngine()
	profile := power.MustProfile(cpu.SandyBridge)
	k, err := kernel.New("tl", cpu.SandyBridge, profile, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	coeff := model.Coefficients{Core: 6, Ins: 1.5, Cache: 130, Mem: 900, Chip: 5, Disk: 1.7, Net: 5.8, IncludesChipShare: true}
	fac := core.Attach(k, coeff, core.Config{Approach: core.ApproachChipShare})
	rng := sim.NewRand(8)
	dep := workload.WeBWorK{}.Deploy(k, rng)
	gen := server.NewLoadGen(k, fac, dep)
	gen.TraceRequests = true
	req := gen.InjectRequest()
	eng.Run()
	if !req.Finished() {
		t.Fatal("request did not finish")
	}
	return req.Cont
}

func TestTimelineRendersAllStages(t *testing.T) {
	c := capture(t)
	out := Timeline{Width: 60}.Render(c)
	for _, stage := range []string{"apache", "httpd", "mysqld", "latex", "dvipng"} {
		if !strings.Contains(out, stage) {
			t.Fatalf("timeline missing stage %s:\n%s", stage, out)
		}
	}
	if !strings.Contains(out, "#") {
		t.Fatal("timeline has no active spans")
	}
	if !strings.Contains(out, "F") {
		t.Fatal("timeline has no fork marks")
	}
	// Each lane line has the fixed width between the pipes.
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			j := strings.LastIndexByte(line, '|')
			if j-i-1 != 60 {
				t.Fatalf("lane width %d, want 60: %q", j-i-1, line)
			}
		}
	}
}

func TestTimelineEventLogSorted(t *testing.T) {
	c := capture(t)
	log := Timeline{Origin: c.Start}.EventLog(c)
	lines := strings.Split(strings.TrimSpace(log), "\n")
	if len(lines) < 5 {
		t.Fatalf("event log too short:\n%s", log)
	}
	if !strings.Contains(log, "fork") || !strings.Contains(log, "exit") {
		t.Fatalf("event log missing kinds:\n%s", log)
	}
}

func TestTimelineWithoutTrace(t *testing.T) {
	c := &core.Container{Label: "x"}
	if out := (Timeline{}).Render(c); !strings.Contains(out, "no trace intervals") {
		t.Fatalf("unexpected: %s", out)
	}
}
