// Package stats provides the time-series and distribution utilities shared
// by the power model, the alignment machinery, and the experiment harness:
// fixed-interval bucketed series, cross-correlation (the paper's Eq. 4),
// histograms, and streaming summary statistics.
package stats

import (
	"fmt"
	"math"

	"powercontainers/internal/sim"
)

// Series is a time series sampled on a fixed-interval grid starting at time
// zero. Values accumulate into buckets; reading yields the per-bucket mean
// rate, which is how both the ground-truth power recorder and the modeled
// power estimate are stored (energy per bucket → average watts per bucket).
type Series struct {
	interval sim.Time
	buckets  []float64
	// dirtyLo is the lowest bucket index written since the last ClearDirty
	// (len(buckets) and above meaning "nothing dirty"). It lets a single
	// derived-series consumer recompute only the suffix that may have
	// changed: writes are not append-only (AddSpread can reach back into
	// old buckets), so a low-water mark is the cheapest sound summary.
	dirtyLo int
	// cursors are additional independent low-water marks (NewCursor), so
	// that consumers beyond the legacy DirtyLow/ClearDirty owner can each
	// keep their own incremental view of the same series.
	cursors []*Cursor
}

// NewSeries returns a series with the given bucket interval.
func NewSeries(interval sim.Time) *Series {
	if interval <= 0 {
		panic("stats: non-positive series interval")
	}
	return &Series{interval: interval, dirtyLo: clean}
}

// clean is the dirtyLo sentinel meaning "no writes since ClearDirty". A
// zero-value Series conservatively reports bucket 0 dirty, which is safe
// (consumers recompute everything) just not fast.
const clean = int(^uint(0) >> 1) // max int

func (s *Series) markDirty(idx int) {
	if idx < s.dirtyLo {
		s.dirtyLo = idx
	}
	for _, c := range s.cursors {
		if idx < c.lo {
			c.lo = idx
		}
	}
}

// Cursor is an independent dirty low-water mark over a Series. The legacy
// DirtyLow/ClearDirty pair supports exactly one consumer (whoever clears
// owns the mark); a Cursor gives any additional consumer — e.g. the
// streaming engine's modeled-power cache alongside the recalibrator's —
// its own mark, updated by the same writes but cleared independently.
type Cursor struct {
	s  *Series
	lo int
}

// NewCursor registers and returns a new cursor. A fresh cursor starts
// fully dirty (low = 0) so that its first consumer pass is conservative:
// it sees every bucket written before the cursor existed.
func (s *Series) NewCursor() *Cursor {
	c := &Cursor{s: s, lo: 0}
	s.cursors = append(s.cursors, c)
	return c
}

// DirtyLow returns the lowest bucket index written since this cursor's
// last Clear; any value ≥ the series Len() means no bucket changed.
func (c *Cursor) DirtyLow() int { return c.lo }

// Clear resets this cursor's mark without touching other consumers.
func (c *Cursor) Clear() { c.lo = clean }

// DirtyLow returns the lowest bucket index written since the last
// ClearDirty; any value ≥ Len() means no bucket changed. The dirty mark is
// a single shared low-water value, so it supports one consumer: whoever
// calls ClearDirty owns the incremental view.
func (s *Series) DirtyLow() int { return s.dirtyLo }

// ClearDirty resets the dirty mark; see DirtyLow.
func (s *Series) ClearDirty() { s.dirtyLo = clean }

// Interval returns the bucket width.
func (s *Series) Interval() sim.Time { return s.interval }

// Len returns the number of buckets touched so far.
func (s *Series) Len() int { return len(s.buckets) }

// grow ensures bucket idx exists.
func (s *Series) grow(idx int) {
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, 0)
	}
}

// Add accumulates value into the bucket containing time t.
func (s *Series) Add(t sim.Time, value float64) {
	if t < 0 {
		panic("stats: negative time")
	}
	idx := int(t / s.interval)
	s.grow(idx)
	s.buckets[idx] += value
	s.markDirty(idx)
}

// AddSpread distributes value over the interval [t0, t1) proportionally to
// each bucket's overlap. It is used to integrate energy over task execution
// segments that straddle bucket boundaries.
func (s *Series) AddSpread(t0, t1 sim.Time, value float64) {
	if t1 <= t0 {
		if t1 == t0 {
			return
		}
		panic("stats: AddSpread with reversed interval")
	}
	total := float64(t1 - t0)
	first := t0 / s.interval
	last := (t1 - 1) / s.interval
	s.grow(int(last))
	s.markDirty(int(first))
	for b := first; b <= last; b++ {
		lo := b * s.interval
		hi := lo + s.interval
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		//pclint:allow floatsafe total = t1-t0 is positive: the reversed/empty interval cases returned or panicked above
		s.buckets[b] += value * float64(hi-lo) / total
	}
}

// Bucket returns the accumulated value of bucket i (0 if never touched).
func (s *Series) Bucket(i int) float64 {
	if i < 0 || i >= len(s.buckets) {
		return 0
	}
	return s.buckets[i]
}

// Values returns a copy of all bucket values.
func (s *Series) Values() []float64 {
	return append([]float64(nil), s.buckets...)
}

// Range returns a copy of buckets [lo, hi).
func (s *Series) Range(lo, hi int) []float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.buckets) {
		hi = len(s.buckets)
	}
	if hi <= lo {
		return nil
	}
	return append([]float64(nil), s.buckets[lo:hi]...)
}

// RatePerSecond converts a per-bucket accumulated quantity (e.g. joules) to
// a per-second rate (e.g. watts) for bucket i.
func (s *Series) RatePerSecond(i int) float64 {
	//pclint:allow floatsafe NewSeries rejects non-positive intervals at construction
	return s.Bucket(i) * float64(sim.Second) / float64(s.interval)
}

// RateSeries returns all buckets converted to per-second rates.
func (s *Series) RateSeries() []float64 {
	out := make([]float64, len(s.buckets))
	//pclint:allow floatsafe NewSeries rejects non-positive intervals at construction
	scale := float64(sim.Second) / float64(s.interval)
	for i, v := range s.buckets {
		out[i] = v * scale
	}
	return out
}

// Rebucket aggregates the series into coarser buckets whose width is factor
// times the original interval, averaging (not summing) the fine buckets so
// that rate semantics are preserved.
func (s *Series) Rebucket(factor int) *Series {
	if factor <= 0 {
		panic("stats: non-positive rebucket factor")
	}
	out := NewSeries(s.interval * sim.Time(factor))
	for i := 0; i < len(s.buckets); i += factor {
		var sum float64
		n := 0
		for j := i; j < i+factor && j < len(s.buckets); j++ {
			sum += s.buckets[j]
			n++
		}
		out.grow(i / factor)
		// Scale so that the coarse bucket holds the total accumulated
		// quantity (sum), keeping Add/AddSpread semantics consistent.
		//pclint:allow floatsafe n >= 1: the inner loop always runs for j = i, which is in range
		out.buckets[i/factor] = sum * float64(factor) / float64(n)
		out.markDirty(i / factor)
	}
	return out
}

// CrossCorrelation computes the paper's Eq. 4: the raw inner product between
// the measurement series and the model series at a hypothetical measurement
// delay of lag buckets. measured[i] is compared against model[i+lag].
// Both slices must be per-bucket rates on the same grid.
func CrossCorrelation(measured, model []float64, lag int) float64 {
	var sum float64
	for i := range measured {
		j := i + lag
		if j < 0 || j >= len(model) {
			continue
		}
		sum += measured[i] * model[j]
	}
	return sum
}

// NormalizedCrossCorrelation subtracts each series' mean and divides by the
// standard deviations, yielding a correlation in [-1, 1] that is robust to
// constant offsets (e.g. idle power in the measurement but not the model).
func NormalizedCrossCorrelation(measured, model []float64, lag int) float64 {
	var mx, my float64
	n := 0
	for i := range measured {
		j := i + lag
		if j < 0 || j >= len(model) {
			continue
		}
		mx += measured[i]
		my += model[j]
		n++
	}
	if n < 2 {
		return 0
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range measured {
		j := i + lag
		if j < 0 || j >= len(model) {
			continue
		}
		dx := measured[i] - mx
		dy := model[j] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	//pclint:allow floatsafe exactly-zero variance means a bit-constant series; a tolerance would misclassify genuinely near-constant data
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// String describes the series briefly.
func (s *Series) String() string {
	return fmt.Sprintf("Series(interval=%s, buckets=%d)", sim.FormatTime(s.interval), len(s.buckets))
}
