package stats

import (
	"encoding/json"
	"math"
	"testing"

	"powercontainers/internal/sim"
)

func TestRingWrapAround(t *testing.T) {
	r := NewRing(sim.Millisecond, 4)
	for i := 0; i < 10; i++ {
		if got := r.Append(float64(i)); got != i {
			t.Fatalf("Append #%d returned index %d", i, got)
		}
	}
	if r.Len() != 10 || r.Lo() != 6 || r.Retained() != 4 {
		t.Fatalf("len=%d lo=%d retained=%d, want 10/6/4", r.Len(), r.Lo(), r.Retained())
	}
	for i := 0; i < 6; i++ {
		if _, ok := r.At(i); ok {
			t.Fatalf("evicted slot %d still readable", i)
		}
	}
	for i := 6; i < 10; i++ {
		v, ok := r.At(i)
		if !ok || v != float64(i) {
			t.Fatalf("At(%d) = %v, %v; want %d, true", i, v, ok, i)
		}
	}
	if _, ok := r.At(10); ok {
		t.Fatal("unwritten slot 10 readable")
	}
}

func TestRingEvictionSum(t *testing.T) {
	// Values chosen so that summation order matters in float64: a batch
	// left-to-right sum over the full history must match Total() exactly.
	vals := []float64{1e16, 1, -1e16, 3.25, 1e-3, 7, 1e16, 2, -1e16, 0.125}
	r := NewRing(sim.Millisecond, 3)
	var batch float64
	for _, v := range vals {
		r.Append(v)
		batch += v
	}
	if got := r.Total(); got != batch {
		t.Fatalf("Total = %g, batch sequential sum = %g", got, batch)
	}
	var prefix float64
	for _, v := range vals[:len(vals)-3] {
		prefix += v
	}
	if got := r.EvictedSum(); got != prefix {
		t.Fatalf("EvictedSum = %g, want sequential prefix %g", got, prefix)
	}
}

func TestRingReadSinceAcrossWrapSeam(t *testing.T) {
	r := NewRing(sim.Millisecond, 4)
	for i := 0; i < 7; i++ { // window [3,7), seam inside buf
		r.Append(float64(i * 10))
	}
	got, from := r.ReadSince(0)
	if from != 3 || len(got) != 4 {
		t.Fatalf("ReadSince(0) from=%d len=%d, want 3, 4", from, len(got))
	}
	for i, v := range got {
		if v != float64((from+i)*10) {
			t.Fatalf("ReadSince(0)[%d] = %v, want %d", i, v, (from+i)*10)
		}
	}
	got, from = r.ReadSince(5)
	if from != 5 || len(got) != 2 || got[0] != 50 || got[1] != 60 {
		t.Fatalf("ReadSince(5) = %v from %d", got, from)
	}
	if got, from = r.ReadSince(7); got != nil || from != 7 {
		t.Fatalf("ReadSince(7) = %v from %d, want nil, 7", got, from)
	}
}

func TestRingZeroCapacity(t *testing.T) {
	r := NewRing(sim.Millisecond, 0)
	var batch float64
	for i := 0; i < 5; i++ {
		v := float64(i) + 0.5
		if got := r.Append(v); got != i {
			t.Fatalf("Append #%d returned %d", i, got)
		}
		batch += v
	}
	if r.Len() != 5 || r.Lo() != 5 || r.Retained() != 0 {
		t.Fatalf("len=%d lo=%d retained=%d, want 5/5/0", r.Len(), r.Lo(), r.Retained())
	}
	if _, ok := r.At(4); ok {
		t.Fatal("zero-capacity ring retained a slot")
	}
	if r.Set(4, 1) {
		t.Fatal("Set landed on zero-capacity ring")
	}
	if got := r.Total(); got != batch {
		t.Fatalf("Total = %g, want %g", got, batch)
	}
	if vals, from := r.ReadSince(0); vals != nil || from != 5 {
		t.Fatalf("ReadSince(0) = %v from %d, want nil, 5", vals, from)
	}
}

func TestRingSingleSlot(t *testing.T) {
	r := NewRing(sim.Millisecond, 1)
	r.Append(2)
	if v, ok := r.At(0); !ok || v != 2 {
		t.Fatalf("At(0) = %v, %v", v, ok)
	}
	r.Append(3)
	if _, ok := r.At(0); ok {
		t.Fatal("slot 0 survived eviction in single-slot ring")
	}
	if v, ok := r.At(1); !ok || v != 3 {
		t.Fatalf("At(1) = %v, %v", v, ok)
	}
	if !r.Set(1, 4) {
		t.Fatal("Set(1) rejected")
	}
	if got := r.EvictedSum(); got != 2 {
		t.Fatalf("EvictedSum = %g, want 2", got)
	}
	if got := r.Total(); got != 6 {
		t.Fatalf("Total = %g, want 6", got)
	}
}

func TestRingSetBounds(t *testing.T) {
	r := NewRing(sim.Millisecond, 2)
	r.Append(1)
	r.Append(2)
	r.Append(3) // evicts slot 0
	if r.Set(0, 9) {
		t.Fatal("Set on evicted slot landed")
	}
	if r.Set(3, 9) {
		t.Fatal("Set above hi landed")
	}
	if !r.Set(2, 9) {
		t.Fatal("Set on retained slot rejected")
	}
	if v, _ := r.At(2); v != 9 {
		t.Fatalf("At(2) = %v after Set", v)
	}
}

func TestRingStateRoundTrip(t *testing.T) {
	r := NewRing(10*sim.Millisecond, 3)
	for i := 0; i < 8; i++ {
		r.Append(float64(i) * 1.0625e-3)
	}
	enc, err := json.Marshal(r.State())
	if err != nil {
		t.Fatal(err)
	}
	var st RingState
	if err := json.Unmarshal(enc, &st); err != nil {
		t.Fatal(err)
	}
	got, err := RestoreRing(st)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() || got.Lo() != r.Lo() || got.EvictedSum() != r.EvictedSum() {
		t.Fatalf("restored len/lo/evicted = %d/%d/%g, want %d/%d/%g",
			got.Len(), got.Lo(), got.EvictedSum(), r.Len(), r.Lo(), r.EvictedSum())
	}
	for i := r.Lo(); i < r.Len(); i++ {
		a, _ := r.At(i)
		b, _ := got.At(i)
		if a != b {
			t.Fatalf("slot %d: restored %v, want %v", i, b, a)
		}
	}
	if got.Total() != r.Total() {
		t.Fatalf("restored Total %v, want %v", got.Total(), r.Total())
	}
}

// TestRingRestoreAfterEvictionContinues drives a snapshotted-and-restored
// ring and its uninterrupted original through the same order-sensitive
// tail of appends: the restore must preserve the eviction cursor and the
// sequential prefix sum bit-for-bit, so every later observation —
// eviction sums, totals, window reads — stays identical to the ring that
// never stopped.
func TestRingRestoreAfterEvictionContinues(t *testing.T) {
	vals := []float64{1e16, 1, -1e16, 3.25, 1e-3, 7, 1e16, 2, -1e16, 0.125}
	orig := NewRing(sim.Millisecond, 3)
	for _, v := range vals[:6] { // lo=3: eviction well under way at the cut
		orig.Append(v)
	}
	rest, err := RestoreRing(orig.State())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals[6:] {
		orig.Append(v)
		rest.Append(v)
	}
	if rest.Len() != orig.Len() || rest.Lo() != orig.Lo() {
		t.Fatalf("restored len/lo = %d/%d, want %d/%d", rest.Len(), rest.Lo(), orig.Len(), orig.Lo())
	}
	if rest.EvictedSum() != orig.EvictedSum() || rest.Total() != orig.Total() {
		t.Fatalf("restored evicted/total = %g/%g, want %g/%g",
			rest.EvictedSum(), rest.Total(), orig.EvictedSum(), orig.Total())
	}
	a, af := orig.ReadSince(0)
	b, bf := rest.ReadSince(0)
	if af != bf || len(a) != len(b) {
		t.Fatalf("ReadSince(0): restored from=%d len=%d, want from=%d len=%d", bf, len(b), af, len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ReadSince(0)[%d] = %v, want %v", i, b[i], a[i])
		}
	}
}

// TestRingRestoreResizedWindow restores one snapshot into larger and
// exactly-fitting capacities: the retained window, cursor and prefix sum
// carry over unchanged, a grown window simply defers the next eviction,
// and a capacity too small for the retained slots is rejected (shrinking
// would have to silently evict, breaking the sequential-sum contract).
func TestRingRestoreResizedWindow(t *testing.T) {
	orig := NewRing(sim.Millisecond, 3)
	for i := 0; i < 8; i++ { // window [5,8)
		orig.Append(float64(i) * 1.0625)
	}
	st := orig.State()

	grown := st
	grown.Cap = 5
	g, err := RestoreRing(grown)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cap() != 5 || g.Lo() != orig.Lo() || g.EvictedSum() != orig.EvictedSum() || g.Total() != orig.Total() {
		t.Fatalf("grown restore: cap=%d lo=%d evicted=%g total=%g", g.Cap(), g.Lo(), g.EvictedSum(), g.Total())
	}
	// Two appends fill the spare slots without evicting; the third evicts
	// slot 5 — the oldest retained slot from before the restore.
	g.Append(100)
	g.Append(101)
	if g.Lo() != 5 {
		t.Fatalf("grown window evicted early: lo=%d", g.Lo())
	}
	g.Append(102)
	if g.Lo() != 6 {
		t.Fatalf("grown window did not evict at new capacity: lo=%d", g.Lo())
	}
	if want := orig.EvictedSum() + 5*1.0625; g.EvictedSum() != want {
		t.Fatalf("grown eviction folded %g, want %g", g.EvictedSum(), want)
	}

	exact := st
	exact.Cap = len(st.Values)
	e, err := RestoreRing(exact)
	if err != nil {
		t.Fatalf("exact-fit restore rejected: %v", err)
	}
	if e.Total() != orig.Total() {
		t.Fatalf("exact-fit total %g, want %g", e.Total(), orig.Total())
	}

	shrunk := st
	shrunk.Cap = len(st.Values) - 1
	if _, err := RestoreRing(shrunk); err == nil {
		t.Fatal("restore into a window smaller than the retained slots accepted")
	}
}

func TestRestoreRingRejectsBadState(t *testing.T) {
	bad := []RingState{
		{Interval: 0, Cap: 1},
		{Interval: 1, Cap: -1},
		{Interval: 1, Cap: 1, Lo: 2, Hi: 1},
		{Interval: 1, Cap: 1, Lo: 0, Hi: 2, Values: []float64{1, 2}},
		{Interval: 1, Cap: 2, Lo: 0, Hi: 2, Values: []float64{1}},
	}
	for i, st := range bad {
		if _, err := RestoreRing(st); err == nil {
			t.Fatalf("bad state %d accepted", i)
		}
	}
}

// FuzzRingBuffer drives a ring and a trivial reference model (a plain
// slice plus an eviction cursor) with the same operation stream and
// requires bit-identical observations, including across the wrap seam.
func FuzzRingBuffer(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2, 3, 4, 5, 250, 251, 6, 7})
	f.Add(uint8(0), []byte{0, 1, 2, 3})
	f.Add(uint8(1), []byte{9, 250, 9, 251, 9})
	f.Add(uint8(7), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 250, 252})
	f.Fuzz(func(t *testing.T, capacity uint8, ops []byte) {
		capN := int(capacity % 9)
		r := NewRing(sim.Millisecond, capN)
		var ref []float64 // full history
		lo := 0           // first non-evicted index
		for pos, op := range ops {
			switch {
			case op < 250: // append op-derived value
				v := (float64(op) - 31.5) * 1.0625
				r.Append(v)
				ref = append(ref, v)
				if len(ref)-lo > capN {
					lo++
				}
			case op == 250: // Set somewhere around the window edges
				if len(ref) == 0 {
					continue
				}
				i := pos % (len(ref) + 1)
				ok := r.Set(i, 99.5)
				wantOK := i >= lo && i < len(ref)
				if ok != wantOK {
					t.Fatalf("Set(%d) ok=%v, want %v", i, ok, wantOK)
				}
				if wantOK {
					ref[i] = 99.5
				}
			case op == 251: // ReadSince at varying skips
				skip := pos % (len(ref) + 2)
				got, from := r.ReadSince(skip)
				wantFrom := skip
				if wantFrom < lo {
					wantFrom = lo
				}
				if wantFrom > len(ref) {
					wantFrom = len(ref)
				}
				want := ref[wantFrom:]
				if from != wantFrom && len(want) > 0 {
					t.Fatalf("ReadSince(%d) from=%d, want %d", skip, from, wantFrom)
				}
				if len(got) != len(want) {
					t.Fatalf("ReadSince(%d) len=%d, want %d", skip, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("ReadSince(%d)[%d] = %v, want %v", skip, i, got[i], want[i])
					}
				}
			default: // At over the whole history plus one
				for i := 0; i <= len(ref); i++ {
					v, ok := r.At(i)
					wantOK := i >= lo && i < len(ref)
					if ok != wantOK {
						t.Fatalf("At(%d) ok=%v, want %v", i, ok, wantOK)
					}
					if ok && v != ref[i] {
						t.Fatalf("At(%d) = %v, want %v", i, v, ref[i])
					}
				}
			}
			// Invariants checked after every op.
			if r.Len() != len(ref) || r.Lo() != lo {
				t.Fatalf("len/lo = %d/%d, want %d/%d", r.Len(), r.Lo(), len(ref), lo)
			}
			var evicted float64
			for _, v := range ref[:lo] {
				evicted += v
			}
			if r.EvictedSum() != evicted && !math.IsNaN(evicted) {
				t.Fatalf("EvictedSum = %v, want %v", r.EvictedSum(), evicted)
			}
		}
	})
}

func TestSeriesCursorIndependence(t *testing.T) {
	s := NewSeries(sim.Millisecond)
	s.Add(5*sim.Millisecond, 1)
	c1 := s.NewCursor()
	if c1.DirtyLow() != 0 {
		t.Fatalf("fresh cursor DirtyLow = %d, want 0 (conservatively all dirty)", c1.DirtyLow())
	}
	c1.Clear()
	c2 := s.NewCursor()
	s.Add(3*sim.Millisecond, 1)
	if c1.DirtyLow() != 3 {
		t.Fatalf("c1 DirtyLow = %d, want 3", c1.DirtyLow())
	}
	if c2.DirtyLow() != 0 {
		t.Fatalf("c2 DirtyLow = %d, want 0", c2.DirtyLow())
	}
	c1.Clear()
	if c1.DirtyLow() < s.Len() {
		t.Fatalf("cleared cursor DirtyLow = %d, want ≥ Len %d", c1.DirtyLow(), s.Len())
	}
	if c2.DirtyLow() != 0 {
		t.Fatal("clearing c1 touched c2")
	}
	// The legacy single-consumer mark is unaffected by cursor clears: it
	// still reflects the lowest write so far (bucket 3).
	if s.DirtyLow() != 3 {
		t.Fatalf("legacy DirtyLow = %d, want 3", s.DirtyLow())
	}
	s.ClearDirty()
	s.AddSpread(sim.Millisecond, 2*sim.Millisecond, 4)
	if s.DirtyLow() != 1 || c1.DirtyLow() != 1 || c2.DirtyLow() != 0 {
		t.Fatalf("marks after AddSpread: legacy=%d c1=%d c2=%d", s.DirtyLow(), c1.DirtyLow(), c2.DirtyLow())
	}
}
