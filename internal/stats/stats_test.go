package stats

import (
	"math"
	"testing"
	"testing/quick"

	"powercontainers/internal/sim"
)

func TestSeriesAddAndBucket(t *testing.T) {
	s := NewSeries(sim.Millisecond)
	s.Add(0, 1)
	s.Add(sim.Millisecond-1, 2)
	s.Add(sim.Millisecond, 5)
	if got := s.Bucket(0); got != 3 {
		t.Fatalf("bucket 0 = %g, want 3", got)
	}
	if got := s.Bucket(1); got != 5 {
		t.Fatalf("bucket 1 = %g, want 5", got)
	}
	if got := s.Bucket(99); got != 0 {
		t.Fatalf("untouched bucket = %g, want 0", got)
	}
}

func TestSeriesAddSpreadProportional(t *testing.T) {
	s := NewSeries(10)
	// [5, 25) spans buckets 0 (5 units) and 1 (10) and 2 (5).
	s.AddSpread(5, 25, 20)
	if got := s.Bucket(0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("bucket 0 = %g, want 5", got)
	}
	if got := s.Bucket(1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("bucket 1 = %g, want 10", got)
	}
	if got := s.Bucket(2); math.Abs(got-5) > 1e-9 {
		t.Fatalf("bucket 2 = %g, want 5", got)
	}
}

// Property: AddSpread conserves total mass for arbitrary intervals.
func TestSeriesAddSpreadConservesMass(t *testing.T) {
	f := func(a, b uint16, v uint8) bool {
		t0, t1 := sim.Time(a), sim.Time(a)+sim.Time(b)+1
		val := float64(v) + 0.5
		s := NewSeries(7)
		s.AddSpread(t0, t1, val)
		var sum float64
		for i := 0; i < s.Len(); i++ {
			sum += s.Bucket(i)
		}
		return math.Abs(sum-val) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesRatePerSecond(t *testing.T) {
	s := NewSeries(sim.Millisecond)
	s.Add(0, 0.05) // 0.05 J in 1 ms = 50 W
	if got := s.RatePerSecond(0); math.Abs(got-50) > 1e-9 {
		t.Fatalf("rate = %g, want 50", got)
	}
}

func TestSeriesRebucket(t *testing.T) {
	s := NewSeries(1)
	for i := sim.Time(0); i < 10; i++ {
		s.Add(i, 1)
	}
	c := s.Rebucket(5)
	if c.Interval() != 5 {
		t.Fatalf("interval = %d", c.Interval())
	}
	if got := c.Bucket(0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("coarse bucket = %g, want 5", got)
	}
	// Rate semantics preserved: 1 unit/ns in both.
	if math.Abs(c.RatePerSecond(0)-s.RatePerSecond(0)) > 1e-6 {
		t.Fatalf("rebucket changed rate: %g vs %g", c.RatePerSecond(0), s.RatePerSecond(0))
	}
}

func TestCrossCorrelationFindsKnownLag(t *testing.T) {
	// model[i] = signal[i]; measured[i] = signal[i-3] (measurement is
	// delayed by 3 buckets). Peak correlation must be at lag 3.
	r := sim.NewRand(5)
	n := 500
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = 10 + 5*math.Sin(float64(i)/7) + r.Float64()
	}
	const trueLag = 3
	measured := make([]float64, n)
	for i := trueLag; i < n; i++ {
		measured[i] = signal[i-trueLag]
	}
	bestLag, bestVal := -1, math.Inf(-1)
	for lag := 0; lag <= 10; lag++ {
		// measured[i] vs model[i+lag] aligning means shifting model
		// forward; with measured[i]=model[i-3], match at lag... we
		// compare measured[i] to model[i - lag] by passing -lag.
		v := NormalizedCrossCorrelation(measured, signal, -lag)
		if v > bestVal {
			bestVal, bestLag = v, lag
		}
	}
	if bestLag != trueLag {
		t.Fatalf("peak at lag %d, want %d", bestLag, trueLag)
	}
}

func TestNormalizedCrossCorrelationBounds(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if v := NormalizedCrossCorrelation(a, a, 0); math.Abs(v-1) > 1e-12 {
		t.Fatalf("self-correlation = %g, want 1", v)
	}
	b := []float64{5, 4, 3, 2, 1}
	if v := NormalizedCrossCorrelation(a, b, 0); math.Abs(v+1) > 1e-12 {
		t.Fatalf("anti-correlation = %g, want -1", v)
	}
	flat := []float64{2, 2, 2, 2, 2}
	if v := NormalizedCrossCorrelation(a, flat, 0); v != 0 {
		t.Fatalf("flat-series correlation = %g, want 0", v)
	}
}

func TestCrossCorrelationRawMatchesEquation(t *testing.T) {
	measured := []float64{1, 2, 3}
	model := []float64{4, 5, 6, 7}
	// lag 1: 1*5 + 2*6 + 3*7 = 38
	if v := CrossCorrelation(measured, model, 1); v != 38 {
		t.Fatalf("raw cross-correlation = %g, want 38", v)
	}
	// Out-of-range products are skipped.
	if v := CrossCorrelation(measured, model, 3); v != 1*7 {
		t.Fatalf("edge cross-correlation = %g, want 7", v)
	}
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %g, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.Stddev(), want)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if p := s.Percentile(50); math.Abs(p-50.5) > 1e-9 {
		t.Fatalf("p50 = %g, want 50.5", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %g, want 1", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100 = %g, want 100", p)
	}
	if m := s.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %g, want 50.5", m)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Sum() != 0 {
		t.Fatal("empty sample should yield zeros")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-5, 0.5, 5.5, 9.9, 15} {
		h.Observe(x)
	}
	if h.Bins[0] != 2 { // -5 clamps into bin 0 alongside 0.5
		t.Fatalf("bin 0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[5] != 1 {
		t.Fatalf("bin 5 = %d, want 1", h.Bins[5])
	}
	if h.Bins[9] != 2 { // 9.9 plus clamped 15
		t.Fatalf("bin 9 = %d, want 2", h.Bins[9])
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(0, 20, 40)
	r := sim.NewRand(3)
	for i := 0; i < 5000; i++ {
		h.Observe(r.Float64() * 20)
	}
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	var integral float64
	for i := range h.Bins {
		integral += h.Density(i) * w
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("density integral = %g, want 1", integral)
	}
}

func TestHistogramModes(t *testing.T) {
	h := NewHistogram(0, 20, 20)
	r := sim.NewRand(9)
	// Bimodal: masses near 5 and 15.
	for i := 0; i < 3000; i++ {
		h.Observe(5 + r.NormFloat64(0.6))
		h.Observe(15 + r.NormFloat64(0.6))
	}
	modes := h.Modes(0.05)
	if len(modes) < 2 {
		t.Fatalf("found %d modes (%v), want ≥2", len(modes), modes)
	}
	foundLow, foundHigh := false, false
	for _, m := range modes {
		if math.Abs(m-5) < 1.5 {
			foundLow = true
		}
		if math.Abs(m-15) < 1.5 {
			foundHigh = true
		}
	}
	if !foundLow || !foundHigh {
		t.Fatalf("modes %v missing expected masses at 5 and 15", modes)
	}
}
