package stats

import (
	"math"
	"sort"
)

// Summary accumulates streaming count/mean/variance/min/max via Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe adds a value.
func (s *Summary) Observe(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	//pclint:allow floatsafe s.n was just incremented, so it is at least 1
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() int { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// Stddev returns the sample standard deviation (0 for <2 observations).
func (s *Summary) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Sample retains every observation for percentile queries and histograms.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Observe adds a value.
func (s *Sample) Observe(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.xs) }

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation, or 0 if the sample is empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	pos := p / 100 * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Values returns a copy of the observations in insertion-then-sorted order
// (sorting state depends on prior percentile queries); callers should not
// rely on ordering.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.xs...) }

// Histogram bins observations into fixed-width bins over [lo, hi). Values
// outside the range clamp into the first/last bin, matching how the paper's
// distribution figures render tails.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	total  int
}

// NewHistogram returns a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Observe adds a value.
func (h *Histogram) Observe(x float64) {
	//pclint:allow floatsafe NewHistogram rejects hi <= lo at construction
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	//pclint:allow floatsafe NewHistogram rejects empty bin sets at construction
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the probability density of bin i (fraction of mass per
// unit of x), mirroring the paper's probability-density histograms.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	//pclint:allow floatsafe NewHistogram rejects empty bin sets at construction
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	//pclint:allow floatsafe w > 0 since NewHistogram guarantees hi > lo and at least one bin
	return float64(h.Bins[i]) / float64(h.total) / w
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.total)
}

// Modes returns the bin-center values of the local maxima whose mass exceeds
// minFraction of the total; experiments use it to locate the distribution
// masses the paper labels (e.g. Vosao vs power-virus request power).
func (h *Histogram) Modes(minFraction float64) []float64 {
	var modes []float64
	for i := range h.Bins {
		if h.Fraction(i) < minFraction {
			continue
		}
		left := 0
		if i > 0 {
			left = h.Bins[i-1]
		}
		right := 0
		if i < len(h.Bins)-1 {
			right = h.Bins[i+1]
		}
		if h.Bins[i] >= left && h.Bins[i] >= right && (h.Bins[i] > left || h.Bins[i] > right) {
			modes = append(modes, h.BinCenter(i))
		}
	}
	return modes
}
