package stats

import (
	"fmt"

	"powercontainers/internal/sim"
)

// Ring is a bounded-memory companion to Series for long-running streaming
// consumers: a fixed-capacity window over a conceptually unbounded
// fixed-interval grid of float64 slots, addressed by absolute slot index.
// Slots are appended in order; once the window is full the oldest slot is
// evicted into a running prefix sum. Eviction folds values into the sum in
// strict append order, so Total() reproduces the exact sequential
// summation a batch consumer would compute over the full history —
// bit-identical, independent of capacity.
//
// Unlike Series (which accumulates and can reach back arbitrarily far),
// a Ring only accepts writes within its retained window: Set on an
// evicted slot reports failure and the write is dropped. Capacity zero is
// legal and retains nothing (every Append evicts immediately).
type Ring struct {
	interval sim.Time
	buf      []float64 // circular storage, len == capacity
	start    int       // buf index of slot lo
	lo, hi   int       // retained window is absolute slots [lo, hi)
	evicted  float64   // sequential prefix sum of slots [0, lo)
}

// NewRing returns a ring over an interval grid with the given capacity in
// slots. Capacity may be zero; the interval must be positive.
func NewRing(interval sim.Time, capacity int) *Ring {
	if interval <= 0 {
		panic("stats: non-positive ring interval")
	}
	if capacity < 0 {
		panic("stats: negative ring capacity")
	}
	return &Ring{interval: interval, buf: make([]float64, capacity)}
}

// Interval returns the slot width on the time grid.
func (r *Ring) Interval() sim.Time { return r.interval }

// Cap returns the window capacity in slots.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the total number of slots ever appended (the next absolute
// index), not the retained count.
func (r *Ring) Len() int { return r.hi }

// Lo returns the first retained absolute slot index; slots below it have
// been evicted into the prefix sum.
func (r *Ring) Lo() int { return r.lo }

// Retained returns the number of slots currently held in the window.
func (r *Ring) Retained() int { return r.hi - r.lo }

// slot maps an absolute index in [lo, hi) to a buf position.
//
//pclint:hotpath
func (r *Ring) slot(i int) int {
	p := r.start + (i - r.lo)
	if p >= len(r.buf) {
		p -= len(r.buf)
	}
	return p
}

// Append adds the next slot's value, evicting the oldest retained slot
// into the prefix sum if the window is full. It returns the absolute
// index of the appended slot.
//
//pclint:hotpath
func (r *Ring) Append(v float64) int {
	if r.hi-r.lo == len(r.buf) {
		if len(r.buf) == 0 {
			// Zero capacity: the value is evicted immediately.
			r.evicted += v
			r.lo++
			r.hi++
			return r.hi - 1
		}
		r.evicted += r.buf[r.start]
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
		r.lo++
	}
	r.buf[r.slot(r.hi)] = v
	r.hi++
	return r.hi - 1
}

// At returns the value of absolute slot i and whether it is retained.
//
//pclint:hotpath
func (r *Ring) At(i int) (float64, bool) {
	if i < r.lo || i >= r.hi {
		return 0, false
	}
	return r.buf[r.slot(i)], true
}

// Set overwrites retained slot i, reporting whether the write landed.
// Writes below the window (already evicted) or at/above hi are dropped.
//
//pclint:hotpath
func (r *Ring) Set(i int, v float64) bool {
	if i < r.lo || i >= r.hi {
		return false
	}
	r.buf[r.slot(i)] = v
	return true
}

// ReadSince returns a copy of the retained slots with absolute index ≥
// skip, linearized across the internal wrap seam, along with the absolute
// index of the first returned slot (max(skip, Lo())). It mirrors
// power.SinceReader semantics: a cursor-tracking consumer passes the
// count it has already seen and receives only the fresh tail.
func (r *Ring) ReadSince(skip int) ([]float64, int) {
	from := skip
	if from < r.lo {
		from = r.lo
	}
	if from >= r.hi {
		return nil, from
	}
	out := make([]float64, r.hi-from)
	for i := range out {
		out[i] = r.buf[r.slot(from+i)]
	}
	return out, from
}

// EvictedSum returns the sequential prefix sum of all evicted slots.
func (r *Ring) EvictedSum() float64 { return r.evicted }

// Total returns the sum of every slot ever appended, computed as the
// evicted prefix sum plus the retained slots in append order — the same
// left-to-right summation order a batch consumer of the full history
// would use, so the result is bit-identical regardless of capacity or of
// how many slots have been evicted (as long as retained slots were not
// rewritten with Set).
func (r *Ring) Total() float64 {
	sum := r.evicted
	for i := r.lo; i < r.hi; i++ {
		sum += r.buf[r.slot(i)]
	}
	return sum
}

// RingState is the serializable snapshot of a Ring, used by streaming
// checkpoints. Values holds the retained window linearized in append
// order. JSON round-trips float64 exactly (shortest round-trip encoding),
// so Restore(State()) reproduces the ring bit-for-bit.
type RingState struct {
	Interval sim.Time  `json:"interval"`
	Cap      int       `json:"cap"`
	Lo       int       `json:"lo"`
	Hi       int       `json:"hi"`
	Evicted  float64   `json:"evicted"`
	Values   []float64 `json:"values"`
}

// State captures the ring's current contents.
func (r *Ring) State() RingState {
	vals, _ := r.ReadSince(r.lo)
	return RingState{Interval: r.interval, Cap: len(r.buf), Lo: r.lo, Hi: r.hi, Evicted: r.evicted, Values: vals}
}

// RestoreRing reconstructs a ring from a snapshot. The linearized window
// is laid out from buf position 0; ReadSince, At, Total and State are
// seam-position-independent, so a restored ring is observationally
// identical to the one snapshotted.
func RestoreRing(st RingState) (*Ring, error) {
	if st.Interval <= 0 || st.Cap < 0 || st.Lo < 0 || st.Hi < st.Lo {
		return nil, fmt.Errorf("stats: invalid ring state (interval=%d cap=%d lo=%d hi=%d)", st.Interval, st.Cap, st.Lo, st.Hi)
	}
	if st.Hi-st.Lo != len(st.Values) || st.Hi-st.Lo > st.Cap {
		return nil, fmt.Errorf("stats: ring state window [%d,%d) inconsistent with %d values, cap %d", st.Lo, st.Hi, len(st.Values), st.Cap)
	}
	r := NewRing(st.Interval, st.Cap)
	r.lo, r.hi, r.evicted = st.Lo, st.Hi, st.Evicted
	copy(r.buf, st.Values)
	return r, nil
}
