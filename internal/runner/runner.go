// Package runner executes deterministic job plans on a bounded worker
// pool. The experiments layer decomposes an experiment — a grid of fully
// independent machine simulations — into a Plan of self-contained Jobs;
// the runner fans the jobs out across up to N workers and assembles the
// results by job index, so an experiment's output is byte-identical
// regardless of worker count or completion order.
//
// Determinism contract: a Job must be self-contained. It owns its own
// sim.Engine and RNG (seeded from the experiment seed, optionally mixed
// with the job key via SeedFor) and shares no mutable state with other
// jobs. The runner guarantees nothing else: it does not order job
// *execution*, only job *results*.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one self-contained unit of work: typically a full machine
// simulation (engine, kernel, facility, meters) plus the reduction of its
// measurements into one result cell.
type Job struct {
	// Key labels the job in error messages and is the conventional input
	// to SeedFor when a job needs its own derived seed.
	Key string
	// Run executes the job. It runs on an arbitrary worker goroutine and
	// must not touch state shared with other jobs.
	Run func() (any, error)
}

// Plan is an ordered list of jobs. The order fixes the order of the
// result slice, not the order of execution.
type Plan struct {
	jobs []Job
}

// Add appends a job to the plan.
func (p *Plan) Add(key string, run func() (any, error)) {
	p.jobs = append(p.jobs, Job{Key: key, Run: run})
}

// Len returns the number of planned jobs.
func (p *Plan) Len() int { return len(p.jobs) }

// defaultJobs overrides the default worker bound when positive
// (SetDefaultJobs; cmd/pcbench's -jobs flag lands here).
var defaultJobs atomic.Int64

// DefaultJobs returns the worker bound used when Run is called with
// jobs <= 0: the SetDefaultJobs override if set, else GOMAXPROCS.
func DefaultJobs() int {
	if n := defaultJobs.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultJobs sets the process-default worker bound; n <= 0 restores
// the GOMAXPROCS default.
func SetDefaultJobs(n int) {
	if n < 0 {
		n = 0
	}
	defaultJobs.Store(int64(n))
}

// Run executes the plan's jobs on at most jobs concurrent workers
// (jobs <= 0 selects DefaultJobs) and returns one result per job, indexed
// by plan position. Every job runs even if another fails; the returned
// error is the lowest-index failure, so the outcome is independent of
// completion order.
func Run(p *Plan, jobs int) ([]any, error) {
	n := len(p.jobs)
	if n == 0 {
		return nil, nil
	}
	if jobs <= 0 {
		jobs = DefaultJobs()
	}
	if jobs > n {
		jobs = n
	}
	results := make([]any, n)
	errs := make([]error, n)
	if jobs == 1 {
		for i := range p.jobs {
			results[i], errs[i] = p.jobs[i].Run()
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(jobs)
		for w := 0; w < jobs; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = p.jobs[i].Run()
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: job %s: %w", p.jobs[i].Key, err)
		}
	}
	return results, nil
}

// Collect runs the plan and asserts every result to T.
func Collect[T any](p *Plan, jobs int) ([]T, error) {
	raw, err := Run(p, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(raw))
	for i, r := range raw {
		v, ok := r.(T)
		if !ok {
			return nil, fmt.Errorf("runner: job %s returned %T, want %T", p.jobs[i].Key, r, *new(T))
		}
		out[i] = v
	}
	return out, nil
}

// SeedFor derives a job seed from the experiment seed and the job key:
// an FNV-1a hash of the key mixed into the base through a splitmix64
// finalizer. Distinct keys yield well-separated, reproducible streams.
func SeedFor(base uint64, key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	x := base ^ h
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
