package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestResultsIndexedByPlanOrder checks that results land at their plan
// positions no matter how workers interleave: late jobs finish first.
func TestResultsIndexedByPlanOrder(t *testing.T) {
	const n = 32
	p := &Plan{}
	for i := 0; i < n; i++ {
		i := i
		p.Add(fmt.Sprintf("job%d", i), func() (any, error) {
			// Earlier jobs sleep longer, inverting completion order.
			time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
			return i * i, nil
		})
	}
	for _, jobs := range []int{1, 2, 8, 64} {
		got, err := Collect[int](p, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

// TestLowestIndexErrorWins checks the returned error is deterministic —
// the lowest-index failure — even when a later job fails first.
func TestLowestIndexErrorWins(t *testing.T) {
	early := errors.New("early failure")
	late := errors.New("late failure")
	p := &Plan{}
	p.Add("ok", func() (any, error) { return 1, nil })
	p.Add("early", func() (any, error) {
		time.Sleep(2 * time.Millisecond)
		return nil, early
	})
	p.Add("late", func() (any, error) { return nil, late })
	for _, jobs := range []int{1, 4} {
		_, err := Run(p, jobs)
		if !errors.Is(err, early) {
			t.Fatalf("jobs=%d: error %v, want wrapped %v", jobs, err, early)
		}
		if !strings.Contains(err.Error(), "job early") {
			t.Fatalf("jobs=%d: error %q does not name the failing job", jobs, err)
		}
	}
}

// TestWorkerBound checks concurrency never exceeds the requested bound.
func TestWorkerBound(t *testing.T) {
	const bound = 3
	var active, peak atomic.Int64
	var mu sync.Mutex
	p := &Plan{}
	for i := 0; i < 24; i++ {
		p.Add(fmt.Sprintf("j%d", i), func() (any, error) {
			now := active.Add(1)
			mu.Lock()
			if now > peak.Load() {
				peak.Store(now)
			}
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
			active.Add(-1)
			return nil, nil
		})
	}
	if _, err := Run(p, bound); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > bound {
		t.Fatalf("peak concurrency %d exceeds bound %d", got, bound)
	}
}

func TestEmptyPlan(t *testing.T) {
	got, err := Run(&Plan{}, 8)
	if err != nil || got != nil {
		t.Fatalf("empty plan: %v, %v", got, err)
	}
}

func TestCollectTypeMismatch(t *testing.T) {
	p := &Plan{}
	p.Add("str", func() (any, error) { return "not an int", nil })
	if _, err := Collect[int](p, 1); err == nil {
		t.Fatal("type mismatch not reported")
	}
}

func TestDefaultJobs(t *testing.T) {
	if got := DefaultJobs(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default jobs %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultJobs(5)
	defer SetDefaultJobs(0)
	if got := DefaultJobs(); got != 5 {
		t.Fatalf("override jobs %d, want 5", got)
	}
	SetDefaultJobs(0)
	if got := DefaultJobs(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("reset jobs %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestSeedForStableAndSeparated checks SeedFor is a pure function of
// (base, key) and that nearby keys and bases yield distinct seeds.
func TestSeedForStableAndSeparated(t *testing.T) {
	if SeedFor(1, "fig8/SandyBridge") != SeedFor(1, "fig8/SandyBridge") {
		t.Fatal("SeedFor not deterministic")
	}
	seen := map[uint64]string{}
	for base := uint64(0); base < 4; base++ {
		for _, key := range []string{"a", "b", "fig5/0", "fig5/1", ""} {
			s := SeedFor(base, key)
			id := fmt.Sprintf("%d/%s", base, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and %s", prev, id)
			}
			seen[s] = id
		}
	}
}
