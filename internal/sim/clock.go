// Package sim provides the deterministic discrete-event simulation core
// used by every substrate in this repository: a virtual clock measured in
// nanoseconds, an event queue with stable FIFO ordering for simultaneous
// events, and a seeded pseudo-random number generator.
//
// All simulated machines in an experiment share one Engine so that a
// heterogeneous cluster advances on a single virtual timeline.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time = int64

// Convenient durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// FormatTime renders a virtual time as a human-readable duration string.
func FormatTime(t Time) string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", t)
	}
}

// event is a scheduled callback. Events are recycled through the engine's
// free list: gen increments each time the struct is retired, so a stale
// Handle (kept after its event fired or was cancelled) can never cancel the
// struct's next occupant.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among simultaneous events
	fn  func()
	gen uint64 // incarnation counter for Handle staleness checks
	// index in the heap, maintained by heap.Interface methods; -1 when
	// removed. Needed for cancellation.
	index int
}

// Handle identifies a scheduled event so that it can be cancelled. It pins
// the event's incarnation, so a Handle held across the event firing (and
// its struct being recycled for a new event) goes inert instead of aliasing
// the new occupant.
type Handle struct {
	ev  *event
	gen uint64
}

// Cancelled reports whether the handle's event was cancelled or already ran.
func (h Handle) live() bool { return h.ev != nil && h.ev.index >= 0 && h.ev.gen == h.gen }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Probe observes every event dispatch, for runtime invariant auditing
// (virtual-time monotonicity, FIFO ordering among simultaneous events).
// A nil probe — the default — costs only a nil check on the hot path.
type Probe interface {
	// OnStep fires immediately before an event's callback runs: now is
	// the clock before the step, at and seq identify the event being
	// dispatched.
	OnStep(now, at Time, seq uint64)
}

// Engine is a discrete-event simulation driver. It is not safe for
// concurrent use; an entire experiment runs on one goroutine.
type Engine struct {
	now   Time
	heap  eventHeap
	seq   uint64
	probe Probe
	// free recycles retired event structs. Scheduling is the hottest
	// allocation site in a simulation (every context switch, I/O
	// completion and sampling period schedules at least one event), so
	// fired/cancelled events go back to this stack instead of the garbage
	// collector.
	free []*event
}

// SetProbe installs an audit probe (nil to disable).
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// Probe returns the installed audit probe, if any.
func (e *Engine) Probe() Probe { return e.probe }

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it indicates a causality bug in the caller, not a recoverable condition.
//
//pclint:hotpath
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now)) //pclint:allow hotalloc panic path: formats only when a causality bug fires
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = t, e.seq, fn
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn} //pclint:allow hotalloc free-list miss; steady state recycles events through retire
	}
	heap.Push(&e.heap, ev)
	return Handle{ev: ev, gen: ev.gen}
}

// retire returns a dequeued event to the free list, bumping its incarnation
// so outstanding Handles to it go inert.
//
//pclint:hotpath
func (e *Engine) retire(ev *event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev) //pclint:allow hotalloc free-list growth is bounded by the peak pending-event count
}

// After schedules fn to run d nanoseconds from now.
//
//pclint:hotpath
func (e *Engine) After(d Time, fn func()) Handle {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op.
//
//pclint:hotpath
func (e *Engine) Cancel(h Handle) {
	if !h.live() {
		return
	}
	heap.Remove(&e.heap, h.ev.index)
	h.ev.index = -1
	e.retire(h.ev)
}

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.heap) }

// NextEventAt peeks at the earliest pending event's time without running
// it. It reports false when no event is pending. Streaming consumers use
// it to tell a drained simulation (nothing left but clock advancement)
// from one with work still scheduled.
func (e *Engine) NextEventAt() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// Step runs the next event, if any, advancing the clock to its time.
// It reports whether an event ran.
//
//pclint:hotpath
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*event)
	if e.probe != nil {
		e.probe.OnStep(e.now, ev.at, ev.seq)
	}
	e.now = ev.at
	fn := ev.fn
	// Retire before running fn: the callback may schedule new events, and
	// the freshly freed struct being reused inside fn is exactly the case
	// the generation counter exists for.
	e.retire(ev)
	if fn != nil {
		fn()
	}
	return true
}

// RunUntil runs events with time ≤ t, then advances the clock to exactly t.
// Events scheduled during the run are honored if they fall within the bound.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run drains every pending event, including ones scheduled along the way.
func (e *Engine) Run() {
	for e.Step() {
	}
}
