// Package sim provides the deterministic discrete-event simulation core
// used by every substrate in this repository: a virtual clock measured in
// nanoseconds, an event queue with stable FIFO ordering for simultaneous
// events, and a seeded pseudo-random number generator.
//
// All simulated machines in an experiment share one Engine so that a
// heterogeneous cluster advances on a single virtual timeline. (Sharded
// cluster runs use one Engine per node plus a deterministic merge; see
// internal/cluster.)
package sim

import (
	"fmt"
	"math/bits"
	"slices"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time = int64

// Convenient durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// FormatTime renders a virtual time as a human-readable duration string.
func FormatTime(t Time) string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", t)
	}
}

// Probe observes every event dispatch, for runtime invariant auditing
// (virtual-time monotonicity, FIFO ordering among simultaneous events).
// A nil probe — the default — costs only a nil check on the hot path.
type Probe interface {
	// OnStep fires immediately before an event's callback runs: now is
	// the clock before the step, at and seq identify the event being
	// dispatched.
	OnStep(now, at Time, seq uint64)
}

// Queue geometry.
//
// The near horizon is a hierarchical bit-indexed calendar: wheelLevels
// levels of 64 buckets each, level k bucketing time by bits
// [l0Shift+6k, l0Shift+6k+6) of the absolute timestamp. Level 0 buckets
// span 2^12 ns ≈ 4.1 µs; the whole wheel spans 2^36 ns ≈ 68.7 s, which
// covers every experiment horizon in this repository. Events beyond the
// current wheel span go to an index-addressed d-ary min-heap and drain
// into the wheel in bulk when the clock reaches their span, so each
// event pays at most one heap traversal and a constant number of bucket
// hops regardless of how many events are pending.
const (
	heapArity   = 4  // fan-out of the far-future min-heap
	l0Shift     = 12 // log2 of the level-0 bucket width in ns
	levelBits   = 6  // log2 of the bucket count per wheel level
	wheelLevels = 4
	bucketCount = 1 << levelBits
	// wheelSpanShift is the log2 of the full wheel span: timestamps that
	// differ from the wheel position in bits at or above this go to the
	// overflow heap.
	wheelSpanShift = l0Shift + wheelLevels*levelBits
)

// heapEntry is one pending event as seen by the queue (heap, bucket or
// sorted dispatch run). The ordering keys (at, seq) live inline so
// compares never chase a slot index into the arena. slot addresses the
// event's arena columns; gen pins the slot incarnation the entry belongs
// to, so a lazily cancelled entry (whose slot has moved on) is
// recognised and discarded when it surfaces for dispatch.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
	gen  uint32
}

// entryLess is the total event order: virtual time, then schedule
// sequence (FIFO among simultaneous events). Buckets partition by time
// and every dispatch run is sorted with this comparator, so the engine
// dispatches in exactly this order no matter which structure an event
// passed through — which is what keeps it bit-identical to the
// container/heap reference path.
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// entryCmp adapts entryLess for slices.SortFunc. Distinct entries never
// compare equal ((at, seq) is a total order), so sort instability cannot
// reorder them.
func entryCmp(a, b heapEntry) int {
	if entryLess(a, b) {
		return -1
	}
	if entryLess(b, a) {
		return 1
	}
	return 0
}

// sortRun orders one dispatch run by (at, seq). Buckets fill in
// schedule order, and simulated work is heavily simultaneous (quantum
// expiries, sampling periods and request batches land on shared
// boundaries), so runs are very often already sorted — an O(n) prepass
// catches that before paying for a sort. Otherwise small runs take an
// inlined insertion sort and big ones fall back to slices.SortFunc.
// All three paths produce the same total order, so the choice never
// affects dispatch sequence.
//
//pclint:hotpath
func sortRun(b []heapEntry) {
	sorted := true
	for i := 1; i < len(b); i++ {
		if entryLess(b[i], b[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if len(b) <= 24 {
		for i := 1; i < len(b); i++ {
			ent := b[i]
			j := i
			for j > 0 && entryLess(ent, b[j-1]) {
				b[j] = b[j-1]
				j--
			}
			b[j] = ent
		}
		return
	}
	slices.SortFunc(b, entryCmp)
}

// Handle identifies a scheduled event so that it can be cancelled. It
// pins the slot's incarnation: a Handle held across the event firing
// (and its arena slot being recycled for a new event) goes inert instead
// of aliasing the new occupant. The zero Handle is inert.
type Handle struct {
	// slot1 is the arena slot index plus one, so the zero Handle never
	// addresses slot 0.
	slot1 int32
	gen   uint32
}

// Engine is a discrete-event simulation driver. Events live in a
// struct-of-arrays arena addressed by slot index with generation-counted
// handles; slots are recycled through a free stack, so steady-state
// scheduling performs zero allocations. Pending events sit in a
// hierarchical timing wheel (near horizon) backed by an index-addressed
// d-ary min-heap (far horizon); dispatch consumes one sorted level-0
// bucket at a time. Cancellation is lazy: Cancel retires the slot in
// O(1) and the orphaned entry is dropped when it surfaces for dispatch,
// with an amortized compaction sweep if orphans pile up. It is not safe
// for concurrent use; an entire experiment runs on one goroutine.
type Engine struct {
	now   Time
	seq   uint64
	probe Probe

	// wheelPos is the start time of the level-0 bucket most recently
	// consumed into bottom, always l0-aligned. The wheel invariant:
	// level-k buckets only hold events inside the current level-(k+1)
	// bucket's window, and the heap only holds events beyond the current
	// wheel span.
	wheelPos Time

	// bottom is the current dispatch run: the most recently consumed
	// level-0 bucket, sorted by (at, seq), consumed from bottomIdx.
	// Events scheduled into the current bucket window are
	// insertion-sorted into the unconsumed tail.
	bottom    []heapEntry
	bottomIdx int

	// lvl/occ are the wheel buckets and their occupancy bitmaps; bit j
	// of occ[k] is set iff lvl[k][j] is nonempty.
	lvl [wheelLevels][bucketCount][]heapEntry
	occ [wheelLevels]uint64

	// heap is the d-ary min-heap of far-future events, ordered by
	// (at, seq).
	heap []heapEntry

	// live counts pending (scheduled, not fired, not cancelled) events;
	// dead counts orphaned entries from lazy cancellation still queued.
	live int
	dead int

	// Event arena, one column per field, addressed by slot index.
	// fn is the scheduled callback (nil once retired); gen is the slot's
	// incarnation counter for Handle and entry staleness checks.
	fn  []func()
	gen []uint32

	// free recycles retired slot indices. Scheduling is the hottest
	// path in a simulation (every context switch, I/O completion and
	// sampling period schedules at least one event), so fired/cancelled
	// slots go back to this stack instead of growing the arena.
	free []int32
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// SetProbe installs an audit probe (nil to disable).
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// Probe returns the installed audit probe, if any.
func (e *Engine) Probe() Probe { return e.probe }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it indicates a causality bug in the caller, not a recoverable condition.
//
//pclint:hotpath
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now)) //pclint:allow hotalloc panic path: formats only when a causality bug fires
	}
	e.seq++
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		slot = int32(len(e.fn))
		e.fn = append(e.fn, nil) //pclint:allow hotalloc arena growth; steady state recycles slots through retire
		e.gen = append(e.gen, 0) //pclint:allow hotalloc arena growth; steady state recycles slots through retire
	}
	g := e.gen[slot]
	e.fn[slot] = fn
	e.live++
	ent := heapEntry{at: t, seq: e.seq, slot: slot, gen: g}
	if t>>l0Shift <= e.wheelPos>>l0Shift {
		// At or behind the level-0 bucket the dispatcher is currently
		// consuming (peek may advance the wheel cursor ahead of the
		// clock, so t can trail it): insertion-sort into the unconsumed
		// tail of bottom, which dispatches strictly before every bucket
		// still in the wheel.
		lo, hi := e.bottomIdx, len(e.bottom)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if entryLess(e.bottom[mid], ent) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		e.bottom = append(e.bottom, heapEntry{}) //pclint:allow hotalloc dispatch-run growth is bounded by the peak bucket population
		copy(e.bottom[lo+1:], e.bottom[lo:])
		e.bottom[lo] = ent
	} else {
		e.scatter(ent)
	}
	return Handle{slot1: slot + 1, gen: g}
}

// scatter files an entry into the wheel level picked by the highest
// timestamp bit differing from the wheel position, or into the overflow
// heap when it lies beyond the wheel span. Callers guarantee
// t >= wheelPos and t outside the current bottom bucket.
//
//pclint:hotpath
func (e *Engine) scatter(ent heapEntry) {
	x := uint64(ent.at ^ e.wheelPos)
	for k := 0; k < wheelLevels; k++ {
		if x>>(l0Shift+(k+1)*levelBits) == 0 {
			j := (ent.at >> (l0Shift + k*levelBits)) & (bucketCount - 1)
			e.lvl[k][j] = append(e.lvl[k][j], ent) //pclint:allow hotalloc bucket growth; steady state reuses bucket capacity
			e.occ[k] |= 1 << uint(j)
			return
		}
	}
	e.heapPush(ent)
}

// After schedules fn to run d nanoseconds from now.
//
//pclint:hotpath
func (e *Engine) After(d Time, fn func()) Handle {
	return e.At(e.now+d, fn)
}

// retire returns a dequeued slot to the free stack, bumping its
// incarnation so outstanding Handles and queued entries to it go inert.
//
//pclint:hotpath
func (e *Engine) retire(slot int32) {
	e.gen[slot]++
	e.fn[slot] = nil
	e.free = append(e.free, slot) //pclint:allow hotalloc free-stack growth is bounded by the peak pending-event count
}

// Cancel removes a pending event. Cancelling an event that already fired,
// was already cancelled, or whose slot has since been recycled is a no-op.
// The queued entry is not touched here: retiring the slot bumps its
// generation, which orphans the entry; it is discarded when it surfaces
// for dispatch, or at the next compaction sweep if orphans pile up.
//
//pclint:hotpath
func (e *Engine) Cancel(h Handle) {
	slot := h.slot1 - 1
	if slot < 0 || int(slot) >= len(e.gen) || e.gen[slot] != h.gen {
		return
	}
	e.retire(slot)
	e.live--
	e.dead++
	// Amortized compaction: once orphans outnumber live entries the next
	// cancel pays one O(n) sweep, keeping memory bounded by the live
	// event count.
	if e.dead > 64 && e.dead > e.live {
		e.compact()
	}
}

// compact drops every orphaned entry in place. Relative order within
// each structure is preserved and (at, seq) is a total order, so
// dispatch order is unaffected.
//
//pclint:hotpath
func (e *Engine) compact() {
	tail := e.filterLive(e.bottom[e.bottomIdx:])
	e.bottom = e.bottom[:e.bottomIdx+len(tail)]
	for k := 0; k < wheelLevels; k++ {
		if e.occ[k] == 0 {
			continue
		}
		for j := 0; j < bucketCount; j++ {
			if e.occ[k]&(1<<uint(j)) == 0 {
				continue
			}
			b := e.filterLive(e.lvl[k][j])
			e.lvl[k][j] = b
			if len(b) == 0 {
				e.occ[k] &^= 1 << uint(j)
			}
		}
	}
	e.heap = e.filterLive(e.heap)
	if n := len(e.heap); n >= 2 {
		for i := (n - 2) / heapArity; i >= 0; i-- {
			e.siftDown(i)
		}
	}
	e.dead = 0
}

// filterLive compacts a run of entries down to those whose slot
// generation still matches, in place.
//
//pclint:hotpath
func (e *Engine) filterLive(s []heapEntry) []heapEntry {
	out := s[:0]
	for _, ent := range s {
		if e.gen[ent.slot] == ent.gen {
			out = append(out, ent) //pclint:allow hotalloc filters into the input's own backing array from s[:0], never past its capacity
		}
	}
	return out
}

// peek positions bottomIdx on the next live pending event, consuming
// wheel buckets and discarding cancellation orphans as needed. It
// reports whether any pending event exists. peek mutates cursor state
// but never changes dispatch order.
//
//pclint:hotpath
func (e *Engine) peek() bool {
	for {
		for e.bottomIdx < len(e.bottom) {
			ent := e.bottom[e.bottomIdx]
			if e.gen[ent.slot] == ent.gen {
				return true
			}
			e.bottomIdx++ // orphaned by a lazy Cancel: drop it
			e.dead--
		}
		if !e.advance() {
			return false
		}
	}
}

// advance moves the wheel to its next occupied source and loads one
// sorted level-0 bucket into bottom. It reports false when no events
// remain anywhere. Each event is touched a bounded number of times on
// its way down (heap drain → level hops → one sort), which is what makes
// steady-state dispatch O(1) amortized regardless of pending count.
//
//pclint:hotpath
func (e *Engine) advance() bool {
	for {
		// Level 0: consume the next occupied bucket in the current span.
		i := uint((e.wheelPos >> l0Shift) & (bucketCount - 1))
		if m := e.occ[0] >> i << i; m != 0 {
			j := uint(bits.TrailingZeros64(m))
			e.wheelPos = e.wheelPos&^(1<<(l0Shift+levelBits)-1) | Time(j)<<l0Shift
			e.occ[0] &^= 1 << j
			b := e.lvl[0][j]
			if len(b) > 1 {
				sortRun(b)
			}
			e.lvl[0][j] = e.bottom[:0] // swap backing arrays: both reuse capacity
			e.bottom = b
			e.bottomIdx = 0
			return true
		}
		// Levels 1..n: rescatter the next occupied bucket one level down.
		cascaded := false
		for k := 1; k < wheelLevels; k++ {
			shift := uint(l0Shift + k*levelBits)
			i := uint((e.wheelPos >> shift) & (bucketCount - 1))
			m := e.occ[k] >> i << i
			if m == 0 {
				continue
			}
			j := uint(bits.TrailingZeros64(m))
			e.wheelPos = e.wheelPos&^(1<<(shift+levelBits)-1) | Time(j)<<shift
			e.occ[k] &^= 1 << j
			b := e.lvl[k][j]
			e.lvl[k][j] = b[:0]
			for _, ent := range b {
				e.scatter(ent) // targets strictly lower levels: safe while iterating b
			}
			cascaded = true
			break
		}
		if cascaded {
			continue
		}
		// Overflow heap: jump the wheel to the next span with events and
		// drain that span's entries into it.
		if len(e.heap) > 0 {
			e.wheelPos = e.heap[0].at &^ (1<<l0Shift - 1)
			for len(e.heap) > 0 && uint64(e.heap[0].at^e.wheelPos)>>wheelSpanShift == 0 {
				ent := e.heap[0]
				e.heapPop()
				e.scatter(ent)
			}
			continue
		}
		return false
	}
}

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return e.live }

// NextEventAt peeks at the earliest pending event's time without running
// it. It reports false when no event is pending. Streaming consumers use
// it to tell a drained simulation (nothing left but clock advancement)
// from one with work still scheduled.
func (e *Engine) NextEventAt() (Time, bool) {
	if !e.peek() {
		return 0, false
	}
	return e.bottom[e.bottomIdx].at, true
}

// Step runs the next event, if any, advancing the clock to its time.
// It reports whether an event ran.
//
//pclint:hotpath
func (e *Engine) Step() bool {
	if !e.peek() {
		return false
	}
	ent := e.bottom[e.bottomIdx]
	e.bottomIdx++
	e.live--
	if e.probe != nil {
		e.probe.OnStep(e.now, ent.at, ent.seq)
	}
	e.now = ent.at
	fn := e.fn[ent.slot]
	// Retire before running fn: the callback may schedule new events, and
	// the freshly freed slot being reused inside fn is exactly the case
	// the generation counter exists for.
	e.retire(ent.slot)
	if fn != nil {
		fn()
	}
	return true
}

// RunUntil runs events with time ≤ t, then advances the clock to exactly t.
// Events scheduled during the run are honored if they fall within the bound.
func (e *Engine) RunUntil(t Time) {
	for e.peek() && e.bottom[e.bottomIdx].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run drains every pending event, including ones scheduled along the way.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// heapPush adds an entry to the far-future d-ary min-heap.
//
//pclint:hotpath
func (e *Engine) heapPush(ent heapEntry) {
	e.heap = append(e.heap, ent) //pclint:allow hotalloc heap growth is bounded by the peak far-future event count
	e.siftUp(len(e.heap) - 1)
}

// heapPop removes heap[0], restoring the heap invariant.
//
//pclint:hotpath
func (e *Engine) heapPop() {
	n := len(e.heap) - 1
	moved := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = moved
		e.siftDown(0)
	}
}

// siftUp restores the heap invariant upward from index i.
//
//pclint:hotpath
func (e *Engine) siftUp(i int) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) / heapArity
		if !entryLess(ent, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
}

// siftDown restores the heap invariant downward from index i.
//
//pclint:hotpath
func (e *Engine) siftDown(i int) {
	h := e.heap
	ent := h[i]
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(h[c], h[best]) {
				best = c
			}
		}
		if !entryLess(h[best], ent) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ent
}
