package sim

import (
	"testing"
)

// This file property- and fuzz-tests the arena engine against the
// container/heap reference engine in ref.go: identical operation
// sequences must produce bit-identical dispatch streams — same (at, seq)
// per step, same callback order, same clock — including around Cancel of
// pending, fired and recycled handles.

type probeRec struct {
	now, at Time
	seq     uint64
}

// recProbe records every dispatch and checks the two ordering invariants
// on the fly: virtual time never decreases, and simultaneous events fire
// in schedule (seq) order.
type recProbe struct {
	t    *testing.T
	name string
	recs []probeRec
}

func (p *recProbe) OnStep(now, at Time, seq uint64) {
	if at < now {
		p.t.Errorf("%s: dispatched event at %d before clock %d", p.name, at, now)
	}
	if n := len(p.recs); n > 0 {
		prev := p.recs[n-1]
		if at < prev.at {
			p.t.Errorf("%s: virtual time went backwards: %d after %d", p.name, at, prev.at)
		}
		if at == prev.at && seq <= prev.seq {
			p.t.Errorf("%s: FIFO violated at t=%d: seq %d after %d", p.name, at, seq, prev.seq)
		}
	}
	p.recs = append(p.recs, probeRec{now, at, seq})
}

// equivDriver applies one byte-encoded operation stream to both engines
// and fails the test on any divergence.
func equivDriver(t *testing.T, ops []byte) {
	t.Helper()
	arena := NewEngine()
	ref := newRefEngine()
	pa := &recProbe{t: t, name: "arena"}
	pr := &recProbe{t: t, name: "ref"}
	arena.SetProbe(pa)
	ref.SetProbe(pr)

	var firedA, firedR []int
	var handlesA []Handle
	var handlesR []refHandle
	nextID := 0

	pos := 0
	nextByte := func() byte {
		if pos >= len(ops) {
			return 0
		}
		b := ops[pos]
		pos++
		return b
	}

	// schedule registers event id on both engines at the same offset.
	// Every third event's callback schedules a child event, so nested
	// scheduling (and slot recycling inside a dispatch) is exercised.
	schedule := func(delta Time) {
		id := nextID
		nextID++
		cbA := func() {
			firedA = append(firedA, id)
			if id%3 == 0 {
				arena.After(5*Microsecond, func() { firedA = append(firedA, id+1_000_000) })
			}
		}
		cbR := func() {
			firedR = append(firedR, id)
			if id%3 == 0 {
				ref.After(5*Microsecond, func() { firedR = append(firedR, id+1_000_000) })
			}
		}
		handlesA = append(handlesA, arena.After(delta, cbA))
		handlesR = append(handlesR, ref.After(delta, cbR))
	}

	for pos < len(ops) {
		op := nextByte()
		switch op % 8 {
		case 0, 1, 2:
			// Coarse deltas force same-timestamp collisions, which is
			// where FIFO tie-breaking actually gets exercised.
			schedule(Time(nextByte()%16) * Microsecond)
		case 3:
			// Cancel an arbitrary past handle: it may be pending, fired,
			// cancelled already, or its slot recycled — all must behave
			// identically on both engines.
			if len(handlesA) > 0 {
				i := int(nextByte()) % len(handlesA)
				arena.Cancel(handlesA[i])
				ref.Cancel(handlesR[i])
			}
		case 4, 5:
			ranA := arena.Step()
			ranR := ref.Step()
			if ranA != ranR {
				t.Fatalf("Step diverged: arena=%v ref=%v", ranA, ranR)
			}
		case 6:
			d := Time(nextByte()%64) * Microsecond
			arena.RunUntil(arena.Now() + d)
			ref.RunUntil(ref.Now() + d)
		case 7:
			if arena.Pending() != ref.Pending() {
				t.Fatalf("Pending diverged: arena=%d ref=%d", arena.Pending(), ref.Pending())
			}
			atA, okA := arena.NextEventAt()
			atR, okR := ref.NextEventAt()
			if atA != atR || okA != okR {
				t.Fatalf("NextEventAt diverged: arena=(%d,%v) ref=(%d,%v)", atA, okA, atR, okR)
			}
		}
		if arena.Now() != ref.Now() {
			t.Fatalf("clock diverged: arena=%d ref=%d", arena.Now(), ref.Now())
		}
	}
	arena.Run()
	ref.Run()

	if arena.Now() != ref.Now() {
		t.Fatalf("final clock diverged: arena=%d ref=%d", arena.Now(), ref.Now())
	}
	if len(firedA) != len(firedR) {
		t.Fatalf("fired %d callbacks on arena, %d on ref", len(firedA), len(firedR))
	}
	for i := range firedA {
		if firedA[i] != firedR[i] {
			t.Fatalf("callback order diverged at %d: arena=%d ref=%d", i, firedA[i], firedR[i])
		}
	}
	if len(pa.recs) != len(pr.recs) {
		t.Fatalf("dispatched %d events on arena, %d on ref", len(pa.recs), len(pr.recs))
	}
	for i := range pa.recs {
		if pa.recs[i] != pr.recs[i] {
			t.Fatalf("dispatch %d diverged: arena=%+v ref=%+v", i, pa.recs[i], pr.recs[i])
		}
	}
}

// TestArenaMatchesReferenceProperty drives long random op streams from
// several seeds through both engines.
func TestArenaMatchesReferenceProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := NewRand(seed * 101)
		ops := make([]byte, 4096)
		for i := range ops {
			ops[i] = byte(r.Intn(256))
		}
		equivDriver(t, ops)
	}
}

// TestRecycledHandleGenerations pins the exact recycle-aliasing scenario:
// fire a batch, watch slots recycle, and cancel every stale handle while
// the slots' new occupants are pending.
func TestRecycledHandleGenerations(t *testing.T) {
	arena := NewEngine()
	ref := newRefEngine()
	var staleA []Handle
	var staleR []refHandle
	for i := 0; i < 64; i++ {
		staleA = append(staleA, arena.After(Time(i)*Microsecond, func() {}))
		staleR = append(staleR, ref.After(Time(i)*Microsecond, func() {}))
	}
	arena.Run()
	ref.Run()

	firedA, firedR := 0, 0
	for i := 0; i < 64; i++ {
		arena.After(Time(i)*Microsecond, func() { firedA++ })
		ref.After(Time(i)*Microsecond, func() { firedR++ })
	}
	// Every stale handle points at a recycled arena slot now; cancelling
	// them must not touch the new occupants.
	for i := range staleA {
		arena.Cancel(staleA[i])
		ref.Cancel(staleR[i])
	}
	arena.Run()
	ref.Run()
	if firedA != 64 || firedR != 64 {
		t.Fatalf("stale cancels hit live events: arena fired %d, ref fired %d, want 64", firedA, firedR)
	}
}

// FuzzArenaMatchesReference lets the fuzzer search for op sequences on
// which the two engines diverge.
func FuzzArenaMatchesReference(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5, 0, 5, 4, 4, 3, 0})
	f.Add([]byte{2, 0, 2, 0, 2, 0, 3, 1, 6, 63, 7})
	f.Add([]byte{0, 0, 1, 0, 2, 0, 4, 4, 4, 3, 0, 0, 0, 6, 10, 7, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1<<14 {
			t.Skip("cap op streams so the fuzzer explores breadth, not length")
		}
		equivDriver(t, ops)
	})
}
