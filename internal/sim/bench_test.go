package sim

import (
	"fmt"
	"testing"
)

// Benchmark load shapes. Both keep the pending-event count constant
// (every callback schedules exactly one replacement); they differ in
// how reschedule offsets are drawn:
//
//   - load=batch: offsets are exact multiples of a 64µs quantum, so
//     events pile up on shared boundaries — the way simulated kernel
//     work actually arrives (quantum expiries, sampling periods and
//     request batches coincide). FIFO tie-breaking among simultaneous
//     events is the hot path.
//   - load=jitter: offsets are uniform random ns over a ~1ms horizon —
//     an adversarial spread with no simultaneity at all, the worst
//     case for the wheel's bucket sort and the best case for the
//     reference heap's sift locality.
const (
	benchQuantum = Time(1) << 16 // 65.5µs, ~the kernel scheduling quantum
	benchHorizon = 1<<20 - 1     // ~1ms of lookahead
)

// lcg advances the benchmark's deterministic random state.
func lcg(state uint64) uint64 {
	return state*6364136223846793005 + 1442695040888963407
}

func benchDelta(state uint64, batch bool) Time {
	if batch {
		return (Time(state>>33)&15 + 1) * benchQuantum
	}
	return Time(state>>33)&benchHorizon + 1
}

// BenchmarkEngine measures steady-state event churn: the queue is
// prefilled to a fixed pending-event depth, then every step fires a
// callback that immediately schedules its replacement — the shape of
// every kernel timer, context switch and sampling period in the
// simulator. depth=16 is a single busy machine, depth=1024 a cluster,
// depth=65536 the datacenter scale the ROADMAP targets.
//
// scripts/bench_engine.sh parses this benchmark's output into
// BENCH_engine.json; events/sec at load=batch/depth=1024 is the repo's
// headline engine number, and the arena path must report 0 allocs/op
// everywhere.
func BenchmarkEngine(b *testing.B) {
	depths := []int{16, 1024, 65536}
	for _, load := range []string{"batch", "jitter"} {
		batch := load == "batch"
		for _, depth := range depths {
			b.Run(fmt.Sprintf("path=arena/load=%s/depth=%d", load, depth), func(b *testing.B) {
				e := NewEngine()
				state := uint64(0x9e3779b97f4a7c15)
				var fn func()
				fn = func() {
					state = lcg(state)
					e.After(benchDelta(state, batch), fn)
				}
				for i := 0; i < depth; i++ {
					e.After(benchDelta(uint64(i)<<33, batch), fn)
				}
				// Steady-state warmup: run until every wheel level has
				// fully rotated so bucket capacities have converged
				// (~16×depth steps covers one level-1 rotation at this
				// horizon).
				for i := 0; i < 32*depth; i++ {
					e.Step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			})
		}
		for _, depth := range depths {
			b.Run(fmt.Sprintf("path=ref/load=%s/depth=%d", load, depth), func(b *testing.B) {
				e := newRefEngine()
				state := uint64(0x9e3779b97f4a7c15)
				var fn func()
				fn = func() {
					state = lcg(state)
					e.After(benchDelta(state, batch), fn)
				}
				for i := 0; i < depth; i++ {
					e.After(benchDelta(uint64(i)<<33, batch), fn)
				}
				for i := 0; i < 32*depth; i++ {
					e.Step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}

// BenchmarkEngineScheduleCancel isolates the At/Cancel pair (no
// dispatch), the path every preempted timer takes.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	b.Run("path=arena", func(b *testing.B) {
		e := NewEngine()
		for i := 0; i < 1024; i++ {
			e.After(Time(i)+1, func() {})
		}
		cb := func() {}
		// Warmup so the arena free list and bucket capacities converge
		// before allocation accounting starts.
		for i := 0; i < 4096; i++ {
			e.Cancel(e.After(Millisecond, cb))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Cancel(e.After(Millisecond, cb))
		}
	})
	b.Run("path=ref", func(b *testing.B) {
		e := newRefEngine()
		for i := 0; i < 1024; i++ {
			e.After(Time(i)+1, func() {})
		}
		cb := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Cancel(e.After(Millisecond, cb))
		}
	})
}
