package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(7, tick)
		}
	}
	e.At(0, tick)
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99*7 {
		t.Fatalf("clock = %d, want %d", e.Now(), 99*7)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(10, func() { fired = true })
	e.Cancel(h)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-fire are no-ops.
	e.Cancel(h)
	h2 := e.At(20, func() {})
	e.Run()
	e.Cancel(h2)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock = %d, want 12", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four", fired)
	}
}

func TestFormatTime(t *testing.T) {
	cases := map[Time]string{
		500:              "500ns",
		2 * Microsecond:  "2.000us",
		3 * Millisecond:  "3.000ms",
		1500000000:       "1.500s",
		12 * Millisecond: "12.000ms",
	}
	for in, want := range cases {
		if got := FormatTime(in); got != want {
			t.Errorf("FormatTime(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/1000 draws", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	f := func(_ uint8) bool {
		x := r.Float64()
		return x >= 0 && x < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("Intn(10) value %d seen %d times, expected ~1000", v, c)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	const mean = 5.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.ExpFloat64(mean)
		if x < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += x
	}
	got := sum / n
	if math.Abs(got-mean) > 0.1 {
		t.Fatalf("exp mean = %g, want ≈%g", got, mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(13)
	const sd = 2.0
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64(sd)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("norm mean = %g, want ≈0", mean)
	}
	if math.Abs(variance-sd*sd) > 0.15 {
		t.Fatalf("norm variance = %g, want ≈%g", variance, sd*sd)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRandPickWeights(t *testing.T) {
	r := NewRand(19)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weighted pick ordering wrong: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("weight-7 fraction %g, want ≈0.7", frac)
	}
}

func TestRandPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	NewRand(1).Pick([]float64{0, 0})
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(23)
	a := r.Fork(1)
	b := r.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams matched %d/1000 draws", same)
	}
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("empty engine reported a pending event")
	}
	e.At(30, func() {})
	e.At(10, func() {})
	if at, ok := e.NextEventAt(); !ok || at != 10 {
		t.Fatalf("NextEventAt = %v, %v; want 10, true", at, ok)
	}
	e.RunUntil(10)
	if at, ok := e.NextEventAt(); !ok || at != 30 {
		t.Fatalf("NextEventAt after run = %v, %v; want 30, true", at, ok)
	}
	e.RunUntil(30)
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("drained engine reported a pending event")
	}
}
