package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). Experiments seed one Rand so that every run of an
// experiment is bit-for-bit reproducible regardless of Go version.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed nonzero state even for small seeds.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with the given mean.
// It is used for Poisson request inter-arrival times.
func (r *Rand) ExpFloat64(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// NormFloat64 returns a normally distributed value with mean 0 and the given
// standard deviation, via the Box–Muller transform.
func (r *Rand) NormFloat64(stddev float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	return stddev * math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Pick returns a random index weighted by the given non-negative weights.
// It panics if the weights sum to zero or the slice is empty.
func (r *Rand) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("sim: Pick with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent state and the label. It lets subsystems draw random
// numbers without perturbing each other's streams.
func (r *Rand) Fork(label uint64) *Rand {
	return NewRand(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}
