package sim

import (
	"container/heap"
	"fmt"
)

// This file preserves the classic container/heap event queue as a
// reference implementation. The arena engine in clock.go must dispatch
// events in exactly the same (at, seq) order; the property and fuzz
// tests in equiv_test.go drive both engines with identical operation
// sequences and require bit-identical dispatch streams, and the engine
// benchmark reports the arena's speedup over this path.
//
// The reference engine is the pre-arena design: one heap-managed
// *refEvent allocation per scheduled event, with ordering and
// cancellation semantics identical to Engine. It is deliberately not on
// any hot path and carries no //pclint:hotpath marks.

// refEvent is a scheduled callback in the reference engine.
type refEvent struct {
	at  Time
	seq uint64
	fn  func()
	// index in the heap, maintained by heap.Interface methods; -1 when
	// removed. Needed for cancellation.
	index int
}

// refHandle identifies a scheduled reference-engine event for Cancel.
// Events are not recycled, so a handle to a fired or cancelled event is
// permanently inert.
type refHandle struct {
	ev *refEvent
}

func (h refHandle) live() bool { return h.ev != nil && h.ev.index >= 0 }

type refEventHeap []*refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refEventHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// refEngine is the reference discrete-event driver. Its public surface
// mirrors Engine method-for-method so tests can drive both generically.
type refEngine struct {
	now   Time
	heap  refEventHeap
	seq   uint64
	probe Probe
}

func newRefEngine() *refEngine { return &refEngine{} }

func (e *refEngine) SetProbe(p Probe) { e.probe = p }

func (e *refEngine) Now() Time { return e.now }

func (e *refEngine) At(t Time, fn func()) refHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	ev := &refEvent{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.heap, ev)
	return refHandle{ev: ev}
}

func (e *refEngine) After(d Time, fn func()) refHandle {
	return e.At(e.now+d, fn)
}

func (e *refEngine) Cancel(h refHandle) {
	if !h.live() {
		return
	}
	heap.Remove(&e.heap, h.ev.index)
	h.ev.index = -1
	h.ev.fn = nil
}

func (e *refEngine) Pending() int { return len(e.heap) }

func (e *refEngine) NextEventAt() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

func (e *refEngine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*refEvent)
	if e.probe != nil {
		e.probe.OnStep(e.now, ev.at, ev.seq)
	}
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	if fn != nil {
		fn()
	}
	return true
}

func (e *refEngine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *refEngine) Run() {
	for e.Step() {
	}
}
