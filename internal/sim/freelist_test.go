package sim

import "testing"

// TestSlotRecyclingKeepsOrdering schedules-and-drains repeatedly so retired
// arena slots are reused, and checks dispatch order stays correct.
func TestSlotRecyclingKeepsOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	for round := 0; round < 5; round++ {
		got = got[:0]
		base := e.Now()
		for i := 4; i >= 0; i-- {
			i := i
			e.At(base+Time(i)*Millisecond, func() { got = append(got, i) })
		}
		e.Run()
		for i, v := range got {
			if v != i {
				t.Fatalf("round %d: dispatch order %v", round, got)
			}
		}
	}
}

// TestSteadyStateScheduleIsAllocFree pins the arena optimisation itself:
// once the arena and heap have grown to the working set, scheduling,
// cancelling and stepping must not allocate at all.
func TestSteadyStateScheduleIsAllocFree(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.After(Time(i)*Microsecond, func() {})
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		h := e.After(Millisecond, func() {})
		e.Cancel(h)
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel allocates %.1f objects per run with a warm arena", allocs)
	}
	// Self-rescheduling churn (the shape of every kernel timer) must also
	// be alloc-free: the callback closure is created once, outside the
	// measured region.
	var fn func()
	fn = func() { e.After(Microsecond, fn) }
	e.After(Microsecond, fn)
	allocs = testing.AllocsPerRun(100, func() { e.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state step/reschedule allocates %.1f objects per run", allocs)
	}
}

// TestStaleHandleCannotCancelRecycledSlot is the bug the generation counter
// prevents: a Handle kept after its event fired must not cancel the arena
// slot's next occupant.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	e := NewEngine()
	stale := e.After(Millisecond, func() {})
	e.Run() // fires; the slot goes to the free stack

	ran := false
	fresh := e.After(Millisecond, func() { ran = true })
	if fresh.slot1 != stale.slot1 {
		// The free stack should have recycled the slot; if allocation
		// behavior ever changes this test loses its bite, so fail loudly.
		t.Fatalf("free stack did not recycle the arena slot")
	}
	if fresh.gen == stale.gen {
		t.Fatalf("recycled slot kept generation %d", fresh.gen)
	}
	e.Cancel(stale) // must be a no-op: stale generation
	e.Run()
	if !ran {
		t.Fatal("stale handle cancelled a recycled event")
	}

	// And a live handle still cancels its own event.
	ran2 := false
	h := e.After(Millisecond, func() { ran2 = true })
	e.Cancel(h)
	e.Run()
	if ran2 {
		t.Fatal("live handle failed to cancel")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}

// TestCancelledSlotIsRecycled checks Cancel also feeds the free stack.
func TestCancelledSlotIsRecycled(t *testing.T) {
	e := NewEngine()
	h := e.After(Millisecond, func() {})
	e.Cancel(h)
	if len(e.free) != 1 {
		t.Fatalf("free stack has %d entries after cancel, want 1", len(e.free))
	}
	// Double-cancel must not double-free.
	e.Cancel(h)
	if len(e.free) != 1 {
		t.Fatalf("free stack has %d entries after double cancel, want 1", len(e.free))
	}
}

// TestZeroHandleIsInert makes sure the zero Handle can never cancel
// whatever currently occupies arena slot 0.
func TestZeroHandleIsInert(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(Millisecond, func() { ran = true })
	e.Cancel(Handle{})
	e.Run()
	if !ran {
		t.Fatal("zero Handle cancelled slot 0's occupant")
	}
}

// TestHeapInvariantAfterCancel removes events from the middle of a large
// heap and checks the pos column stays consistent with the heap slice.
func TestHeapInvariantAfterCancel(t *testing.T) {
	e := NewEngine()
	r := NewRand(5)
	handles := make([]Handle, 0, 512)
	for i := 0; i < 512; i++ {
		handles = append(handles, e.At(Time(r.Intn(64))*Microsecond, func() {}))
	}
	for _, i := range r.Perm(len(handles))[:256] {
		e.Cancel(handles[i])
	}
	checkHeapInvariant(t, e)
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}

// checkHeapInvariant verifies the far-future heap ordering, the wheel
// occupancy bitmaps, the sortedness of the dispatch run, and that the
// live/dead counters match the queued entries.
func checkHeapInvariant(t *testing.T, e *Engine) {
	t.Helper()
	live, dead := 0, 0
	count := func(ent heapEntry) {
		if e.gen[ent.slot] == ent.gen {
			live++
		} else {
			dead++
		}
	}
	for i := range e.heap {
		count(e.heap[i])
		if i > 0 {
			parent := (i - 1) / heapArity
			if entryLess(e.heap[i], e.heap[parent]) {
				t.Fatalf("heap invariant violated at index %d (parent %d)", i, parent)
			}
		}
	}
	for i := e.bottomIdx; i < len(e.bottom); i++ {
		count(e.bottom[i])
		if i > e.bottomIdx && !entryLess(e.bottom[i-1], e.bottom[i]) {
			t.Fatalf("dispatch run out of order at index %d", i)
		}
	}
	for k := range e.lvl {
		for j := range e.lvl[k] {
			occupied := e.occ[k]&(1<<uint(j)) != 0
			if occupied != (len(e.lvl[k][j]) > 0) {
				t.Fatalf("occupancy bit (%d,%d)=%v but bucket has %d entries", k, j, occupied, len(e.lvl[k][j]))
			}
			for _, ent := range e.lvl[k][j] {
				count(ent)
			}
		}
	}
	if live != e.live || dead != e.dead {
		t.Fatalf("counters live=%d dead=%d, but queues hold live=%d dead=%d", e.live, e.dead, live, dead)
	}
}
