package sim

import "testing"

// TestEventRecyclingKeepsOrdering schedules-and-drains repeatedly so retired
// event structs are reused, and checks dispatch order stays correct.
func TestEventRecyclingKeepsOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	for round := 0; round < 5; round++ {
		got = got[:0]
		base := e.Now()
		for i := 4; i >= 0; i-- {
			i := i
			e.At(base+Time(i)*Millisecond, func() { got = append(got, i) })
		}
		e.Run()
		for i, v := range got {
			if v != i {
				t.Fatalf("round %d: dispatch order %v", round, got)
			}
		}
	}
}

// TestEventStructsAreRecycled pins the free-list optimisation itself: after
// a schedule/drain cycle, scheduling again must not allocate a fresh event
// per call.
func TestEventStructsAreRecycled(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.After(Time(i)*Microsecond, func() {})
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		h := e.After(Millisecond, func() {})
		e.Cancel(h)
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel allocates %.1f objects per run with a warm free list", allocs)
	}
}

// TestStaleHandleCannotCancelRecycledEvent is the bug the generation counter
// prevents: a Handle kept after its event fired must not cancel the event
// struct's next occupant.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	stale := e.After(Millisecond, func() {})
	e.Run() // fires; the struct goes to the free list

	ran := false
	fresh := e.After(Millisecond, func() { ran = true })
	if fresh.ev != stale.ev {
		// The free list should have recycled the struct; if allocation
		// behavior ever changes this test loses its bite, so fail loudly.
		t.Fatalf("free list did not recycle the event struct")
	}
	e.Cancel(stale) // must be a no-op: stale generation
	e.Run()
	if !ran {
		t.Fatal("stale handle cancelled a recycled event")
	}

	// And a live handle still cancels its own event.
	ran2 := false
	h := e.After(Millisecond, func() { ran2 = true })
	e.Cancel(h)
	e.Run()
	if ran2 {
		t.Fatal("live handle failed to cancel")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}

// TestCancelledEventIsRecycled checks Cancel also feeds the free list.
func TestCancelledEventIsRecycled(t *testing.T) {
	e := NewEngine()
	h := e.After(Millisecond, func() {})
	e.Cancel(h)
	if len(e.free) != 1 {
		t.Fatalf("free list has %d entries after cancel, want 1", len(e.free))
	}
	// Double-cancel must not double-free.
	e.Cancel(h)
	if len(e.free) != 1 {
		t.Fatalf("free list has %d entries after double cancel, want 1", len(e.free))
	}
}
