package powercontainers

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"powercontainers/internal/experiments"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// StageReport is one server component's share of a request (Figure 4's
// per-stage annotations).
type StageReport struct {
	// Component is the task name (e.g. "httpd", "mysqld", "latex").
	Component string
	// MeanWatts is the stage's mean active power while executing.
	MeanWatts float64
	// EnergyJoules is the stage's attributed energy.
	EnergyJoules float64
	// BusyTime is the stage's attributed CPU time.
	BusyTime time.Duration
}

// RequestReport summarizes one request's power container.
type RequestReport struct {
	// Type is the request class (e.g. "rsa/2048", "vosao/read").
	Type string
	// EnergyJoules is total attributed energy (CPU plus devices).
	EnergyJoules float64
	// MeanActiveWatts is mean modeled power over the busy execution.
	MeanActiveWatts float64
	// CPUTime is attributed busy time across all stages.
	CPUTime time.Duration
	// Response is the server residence time.
	Response time.Duration
	// DutyRatio is the time-averaged duty-cycle ratio applied by power
	// conditioning (1.0 = never throttled).
	DutyRatio float64
	// Stages lists per-component attribution.
	Stages []StageReport
	// FlowEvents holds the captured request-flow trace when request
	// tracing was enabled.
	FlowEvents []string
}

// Report is one run's outcome.
type Report struct {
	Machine  string
	Workload string
	// WindowStart/WindowEnd bound the measurement window (virtual time).
	WindowStart, WindowEnd time.Duration
	// MeasuredActiveWatts is the wall meter's mean active power.
	MeasuredActiveWatts float64
	// AccountedWatts is the aggregate profiled request power — the sum
	// of all container energy over the window divided by its length.
	AccountedWatts float64
	// BackgroundWatts is the background container's share.
	BackgroundWatts float64
	// Requests summarizes every request completed inside the window.
	Requests []RequestReport
	// ThroughputPerSec is completed requests per second.
	ThroughputPerSec float64
	// MeanResponse is the mean response time over the window.
	MeanResponse time.Duration
	// Anomalies lists detected power anomalies (EnableAnomalyDetection):
	// request type, detection offset, and triggering power.
	Anomalies []AnomalyReport
	// Clients aggregates per-client energy usage (AssignClients), sorted
	// by descending energy.
	Clients []ClientUsage
	// Audited records whether the run executed under the runtime
	// invariant auditor (WithAudit or PC_AUDIT); an audited report with no
	// error from Execute passed every invariant check.
	Audited bool
}

// ClientUsage is one client principal's accounted usage over the window.
type ClientUsage struct {
	Client       string
	Requests     int
	EnergyJoules float64
	CPUTime      time.Duration
}

// AnomalyReport is one detected power anomaly.
type AnomalyReport struct {
	// RequestType is the offending request's class.
	RequestType string
	// At is the detection time.
	At time.Duration
	// PowerWatts triggered detection against BaselineWatts ± SigmaWatts.
	PowerWatts    float64
	BaselineWatts float64
	SigmaWatts    float64
}

// ValidationError is |AccountedWatts − MeasuredActiveWatts| / measured: the
// paper's accounting accuracy metric (Figure 8).
func (r *Report) ValidationError() float64 {
	if r.MeasuredActiveWatts <= 0 {
		return 0
	}
	d := r.AccountedWatts - r.MeasuredActiveWatts
	if d < 0 {
		d = -d
	}
	return d / r.MeasuredActiveWatts
}

// buildReport assembles the run's report over window [t0, t1).
func (r *Run) buildReport(t0, t1 sim.Time, accJ, bgJ float64) (*Report, error) {
	m := r.sys.m
	measured, err := experiments.WattsupActiveMean(m, m.Eng.Now(), t0, t1)
	if err != nil {
		return nil, err
	}
	windowSec := float64(t1-t0) / float64(sim.Second)
	rep := &Report{
		Machine:             m.K.Spec.Name,
		Workload:            r.wl.Name(),
		WindowStart:         time.Duration(t0),
		WindowEnd:           time.Duration(t1),
		MeasuredActiveWatts: measured,
		AccountedWatts:      accJ / windowSec,
		BackgroundWatts:     bgJ / windowSec,
		Audited:             m.Audit != nil,
	}

	var totalResp time.Duration
	n := 0
	collect := func(reqs []*server.Request) {
		for _, q := range reqs {
			if !q.Finished() || q.Done < t0 || q.Done >= t1 || q.Cont == nil {
				continue
			}
			rr := requestReport(q)
			rep.Requests = append(rep.Requests, rr)
			totalResp += rr.Response
			n++
		}
	}
	collect(r.gen.Completed())
	for _, g := range r.extra {
		collect(g.Completed())
	}
	sort.SliceStable(rep.Requests, func(i, j int) bool {
		return rep.Requests[i].Type < rep.Requests[j].Type
	})
	rep.ThroughputPerSec = float64(n) / windowSec
	if n > 0 {
		rep.MeanResponse = totalResp / time.Duration(n)
	}
	if r.clients > 0 {
		agg := map[string]*ClientUsage{}
		var order []string
		collectClients := func(reqs []*server.Request) {
			for _, q := range reqs {
				if !q.Finished() || q.Done < t0 || q.Done >= t1 || q.Cont == nil {
					continue
				}
				u := agg[q.Client]
				if u == nil {
					u = &ClientUsage{Client: q.Client}
					agg[q.Client] = u
					order = append(order, q.Client)
				}
				u.Requests++
				u.EnergyJoules += q.Cont.EnergyJ()
				u.CPUTime += time.Duration(q.Cont.CPUTime)
			}
		}
		collectClients(r.gen.Completed())
		for _, g := range r.extra {
			collectClients(g.Completed())
		}
		sort.Strings(order)
		for _, name := range order {
			rep.Clients = append(rep.Clients, *agg[name])
		}
		sort.SliceStable(rep.Clients, func(i, j int) bool {
			return rep.Clients[i].EnergyJoules > rep.Clients[j].EnergyJoules
		})
	}
	if r.detector != nil {
		for _, a := range r.detector.Anomalies() {
			rep.Anomalies = append(rep.Anomalies, AnomalyReport{
				RequestType:   a.Container.Label,
				At:            time.Duration(a.T),
				PowerWatts:    a.PowerW,
				BaselineWatts: a.BaselineW,
				SigmaWatts:    a.SigmaW,
			})
		}
	}
	return rep, nil
}

// requestReport converts a finished request's container into its report.
func requestReport(q *server.Request) RequestReport {
	c := q.Cont
	rr := RequestReport{
		Type:            q.Type,
		EnergyJoules:    c.EnergyJ(),
		MeanActiveWatts: c.MeanActivePowerW(),
		CPUTime:         time.Duration(c.CPUTime),
		Response:        time.Duration(q.ResponseTime()),
		DutyRatio:       c.MeanDutyFraction(),
	}
	for _, st := range c.Stages() {
		rr.Stages = append(rr.Stages, StageReport{
			Component:    st.Task,
			MeanWatts:    st.MeanPowerW(),
			EnergyJoules: st.EnergyJ,
			BusyTime:     time.Duration(st.CPUTime),
		})
	}
	for _, ev := range c.Trace {
		rr.FlowEvents = append(rr.FlowEvents, fmt.Sprintf("%s %s %s %s",
			sim.FormatTime(ev.T-q.Arrive), ev.Kind, ev.Task, ev.Detail))
	}
	return rr
}

// Summary renders the report compactly.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: measured %.1f W active, accounted %.1f W (err %.1f%%), background %.1f W\n",
		r.Workload, r.Machine, r.MeasuredActiveWatts, r.AccountedWatts,
		100*r.ValidationError(), r.BackgroundWatts)
	fmt.Fprintf(&b, "%d requests in window (%.1f req/s), mean response %v\n",
		len(r.Requests), r.ThroughputPerSec, r.MeanResponse.Round(time.Millisecond))

	byType := map[string]*struct {
		n            int
		energy, watt float64
	}{}
	var order []string
	for _, q := range r.Requests {
		t := byType[q.Type]
		if t == nil {
			t = &struct {
				n            int
				energy, watt float64
			}{}
			byType[q.Type] = t
			order = append(order, q.Type)
		}
		t.n++
		t.energy += q.EnergyJoules
		t.watt += q.MeanActiveWatts
	}
	sort.Strings(order)
	for _, name := range order {
		t := byType[name]
		fmt.Fprintf(&b, "  %-16s n=%5d  mean energy %6.2f J  mean power %5.1f W\n",
			name, t.n, t.energy/float64(t.n), t.watt/float64(t.n))
	}
	return b.String()
}
