package powercontainers

import (
	"testing"
	"time"

	"powercontainers/internal/audit"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/export"
	"powercontainers/internal/model"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

// TestDeterministicReplay executes a mixed workload — GAE with virus
// injection and per-client attribution — twice from the same seed and
// requires the full exported per-request accounting (CSV and JSON
// encodings) to be bit-identical. This is a much stronger determinism
// check than comparing a single aggregate: any nondeterministic map
// iteration, unseeded randomness or event-ordering tie anywhere between
// the event queue and the serializers changes the content hash.
func TestDeterministicReplay(t *testing.T) {
	produce := func() ([]export.RequestRecord, error) {
		sys, err := NewSystem("SandyBridge", WithSeed(17))
		if err != nil {
			return nil, err
		}
		run, err := sys.NewRun("GAE-Hybrid", HalfLoad)
		if err != nil {
			return nil, err
		}
		run.AssignClients(8)
		if err := run.InjectPowerViruses(2, 2*time.Second); err != nil {
			return nil, err
		}
		if _, err := run.Execute(5 * time.Second); err != nil {
			return nil, err
		}
		var reqs []*server.Request
		reqs = append(reqs, run.gen.Completed()...)
		for _, g := range run.extra {
			reqs = append(reqs, g.Completed()...)
		}
		if len(reqs) == 0 {
			t.Fatal("replay run completed no requests")
		}
		return export.Collect(reqs), nil
	}
	if err := audit.ReplayCheck(produce); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicReplayCheckpoint is the streaming extension of the
// replay check: run the streaming engine to a mid-run cut, checkpoint,
// restore the checkpoint into a fresh engine over a freshly built
// identically seeded machine, and require the SHA-256 of the remaining
// record stream to match the uninterrupted run's — any engine state the
// checkpoint fails to capture, or any nondeterminism in the rebuilt
// machine, changes the hash.
func TestDeterministicReplayCheckpoint(t *testing.T) {
	const (
		cut     = 23
		horizon = 6 * sim.Second
	)
	cfg := stream.Config{Tick: 100 * sim.Millisecond}
	build := func() (*experiments.Machine, stream.Sources) {
		m, err := experiments.NewMachine(cpu.SandyBridge, core.ApproachRecalibrated, 17)
		if err != nil {
			t.Fatal(err)
		}
		dep := workload.GAE{}.Deploy(m.K, m.Rng.Fork(11))
		gen := server.NewLoadGen(m.K, m.Fac, dep)
		gen.RunOpenLoop(0.4*experiments.PeakRate(m.K.Spec, dep), horizon-sim.Second, m.Rng.Fork(13))
		return m, stream.Sources{Eng: m.Eng, Fac: m.Fac, Meter: m.Chip, Scope: model.ScopePackage}
	}

	// Uninterrupted run: hash everything emitted after the cut.
	_, src := build()
	full := stream.New(src, cfg)
	var col stream.Collector
	full.Sink = &col
	full.RunUntil(horizon)
	want := stream.NewHasher()
	for _, r := range col.Records {
		if r.Tick > cut {
			want.OnRecord(r)
		}
	}
	if want.Count() == 0 {
		t.Fatal("no records after the cut")
	}

	// Interrupted run: stream to the cut, checkpoint, round-trip the
	// encoding, restore into a fresh engine, continue.
	_, src = build()
	head := stream.New(src, cfg)
	head.RunTicks(cut)
	cp, err := stream.DecodeCheckpoint(stream.EncodeCheckpoint(head.Checkpoint()))
	if err != nil {
		t.Fatal(err)
	}
	_, src = build()
	tail, err := stream.ReplayTo(src, cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	got := stream.NewHasher()
	tail.Sink = got
	tail.RunUntil(horizon)

	if got.Sum() != want.Sum() {
		t.Fatalf("restored stream SHA-256 %s, uninterrupted %s (%d vs %d records)",
			got.Sum(), want.Sum(), got.Count(), want.Count())
	}
}
