package powercontainers

import (
	"testing"
	"time"

	"powercontainers/internal/audit"
	"powercontainers/internal/export"
	"powercontainers/internal/server"
)

// TestDeterministicReplay executes a mixed workload — GAE with virus
// injection and per-client attribution — twice from the same seed and
// requires the full exported per-request accounting (CSV and JSON
// encodings) to be bit-identical. This is a much stronger determinism
// check than comparing a single aggregate: any nondeterministic map
// iteration, unseeded randomness or event-ordering tie anywhere between
// the event queue and the serializers changes the content hash.
func TestDeterministicReplay(t *testing.T) {
	produce := func() ([]export.RequestRecord, error) {
		sys, err := NewSystem("SandyBridge", WithSeed(17))
		if err != nil {
			return nil, err
		}
		run, err := sys.NewRun("GAE-Hybrid", HalfLoad)
		if err != nil {
			return nil, err
		}
		run.AssignClients(8)
		if err := run.InjectPowerViruses(2, 2*time.Second); err != nil {
			return nil, err
		}
		if _, err := run.Execute(5 * time.Second); err != nil {
			return nil, err
		}
		var reqs []*server.Request
		reqs = append(reqs, run.gen.Completed()...)
		for _, g := range run.extra {
			reqs = append(reqs, g.Completed()...)
		}
		if len(reqs) == 0 {
			t.Fatal("replay run completed no requests")
		}
		return export.Collect(reqs), nil
	}
	if err := audit.ReplayCheck(produce); err != nil {
		t.Fatal(err)
	}
}
