#!/bin/sh
# Refreshes BENCH_stream.json: the streaming attribution engine's ingest
# benchmark — virtual ticks and meter samples consumed per wall second,
# with per-tick allocation counts — plus the durability layer's recovery
# benchmark (ms to resume from checkpoint + WAL). Extra args go to
# `go test` (e.g. -benchtime=1x for a smoke run, -benchtime=5s for
# stable numbers).
set -e
cd "$(dirname "$0")/.."
out="$PWD/BENCH_stream.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -bench='^(BenchmarkStreamIngest|BenchmarkStreamRecover)$' \
	-benchmem "$@" ./internal/stream/ | tee "$tmp"

# Parse `BenchmarkName[-P]  iters  <value unit>...` lines into JSON, the
# same scheme as bench_numerics.sh: ns/op, B/op, allocs/op plus the
# benchmark's ReportMetric extras (ticks/sec, samples/sec, samples/tick,
# recovery-ms); GOMAXPROCS suffixes are stripped so names are
# host-independent.
awk -v cores="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	line = sprintf("    {\"name\": \"%s\", \"iters\": %s", name, $2)
	for (i = 3; i + 1 <= NF; i += 2) {
		v = $i; u = $(i + 1)
		if (u == "ns/op")          key = "ns_per_op"
		else if (u == "B/op")      key = "bytes_per_op"
		else if (u == "allocs/op") key = "allocs_per_op"
		else {
			key = u
			gsub(/[^A-Za-z0-9]+/, "_", key)
			key = "metric_" key
		}
		line = line sprintf(", \"%s\": %s", key, v)
	}
	lines[++n] = line "}"
}
END {
	printf "{\n  \"cores\": %d,\n  \"benchmarks\": [\n", cores
	for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
	printf "  ]\n}\n"
}' "$tmp" > "$out"
cat "$out"
