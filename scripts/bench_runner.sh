#!/bin/sh
# Refreshes BENCH_runner.json: wall-clock of the whole-registry run
# (`pcbench all`) serially vs through the parallel runner, plus the
# measured speedup at jobs = max(GOMAXPROCS, 4). Pass -short for the
# trimmed experiment subset. Extra args go to `go test`.
set -e
cd "$(dirname "$0")/.."
BENCH_RUNNER_OUT="$PWD/BENCH_runner.json" \
	go test -run='^$' -bench='^BenchmarkRegistryParallel$' -benchtime=1x "$@" .
cat BENCH_runner.json
