#!/bin/sh
# Refreshes BENCH_numerics.json: the fast-path numerics micro-benchmarks
# (prefix-sum cross-correlation vs the reference bucket loop, incremental
# Gram refit vs the batch reference, raw Gram accumulator ops) plus the
# end-to-end Figure 2 alignment run, with ns/op and allocation counts and
# the derived ref-vs-fast speedups. Extra args go to `go test`
# (e.g. -benchtime=1x for a smoke run, -benchtime=5s for stable numbers).
set -e
cd "$(dirname "$0")/.."
out="$PWD/BENCH_numerics.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -bench='^(BenchmarkCorrelationCurve|BenchmarkRefit)$' \
	-benchmem "$@" ./internal/align/ | tee -a "$tmp"
go test -run='^$' -bench='^(BenchmarkLeastSquares|BenchmarkGramSolve|BenchmarkGramFold)$' \
	-benchmem "$@" ./internal/linalg/ | tee -a "$tmp"
go test -run='^$' -bench='^BenchmarkFig2AlignmentCrossCorrelation$' \
	-benchmem "$@" . | tee -a "$tmp"

# Parse `BenchmarkName[-P]  iters  <value unit>...` lines into JSON. The
# unit pairs cover ns/op, B/op, allocs/op and any ReportMetric extras;
# GOMAXPROCS suffixes are stripped so names are host-independent.
awk -v cores="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] = ""
	line = sprintf("    {\"name\": \"%s\", \"iters\": %s", name, $2)
	for (i = 3; i + 1 <= NF; i += 2) {
		v = $i; u = $(i + 1)
		if (u == "ns/op")          { key = "ns_per_op"; ns[name] = v }
		else if (u == "B/op")      key = "bytes_per_op"
		else if (u == "allocs/op") key = "allocs_per_op"
		else {
			key = u
			gsub(/[^A-Za-z0-9]+/, "_", key)
			key = "metric_" key
		}
		line = line sprintf(", \"%s\": %s", key, v)
	}
	lines[++n] = line "}"
}
function speedup(refname, fastname,   r, f) {
	r = ns[refname] + 0; f = ns[fastname] + 0
	if (r <= 0 || f <= 0) return "null"
	return sprintf("%.3f", r / f)
}
END {
	printf "{\n  \"cores\": %d,\n  \"benchmarks\": [\n", cores
	for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
	printf "  ],\n  \"speedups\": {\n"
	printf "    \"correlation_curve_samples_1000\": %s,\n", \
		speedup("BenchmarkCorrelationCurve/path=ref/samples=1000", \
			"BenchmarkCorrelationCurve/path=fast/samples=1000")
	printf "    \"correlation_curve_samples_10000\": %s,\n", \
		speedup("BenchmarkCorrelationCurve/path=ref/samples=10000", \
			"BenchmarkCorrelationCurve/path=fast/samples=10000")
	printf "    \"refit\": %s,\n", \
		speedup("BenchmarkRefit/path=ref", "BenchmarkRefit/path=fast")
	printf "    \"least_squares_vs_gram_solve\": %s\n", \
		speedup("BenchmarkLeastSquares", "BenchmarkGramSolve")
	printf "  }\n}\n"
}' "$tmp" > "$out"
cat "$out"
