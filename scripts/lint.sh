#!/usr/bin/env bash
# Build the pclint multichecker, run the analyzer fixture suites, and run
# all seven analyzers (detlint, maporder, hooklint, floatsafe, unitsafe,
# seedflow, hotalloc) over the whole module through the `go vet -vettool`
# protocol. Exits nonzero on any diagnostic — including stale
# //pclint:allow suppressions, which surface as pclint findings. This is
# the same invocation the CI lint job runs.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p bin
go build -o bin/pclint ./cmd/pclint
go test ./internal/analysis/... ./cmd/pclint/
exec go vet -vettool="$(pwd)/bin/pclint" ./...
