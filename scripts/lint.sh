#!/usr/bin/env bash
# Build the pclint multichecker and run the full analyzer suite (detlint,
# maporder, hooklint, floatsafe) over the whole module through the
# `go vet -vettool` protocol. Exits nonzero on any diagnostic. This is the
# same invocation the CI lint job runs.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p bin
go build -o bin/pclint ./cmd/pclint
exec go vet -vettool="$(pwd)/bin/pclint" ./...
