#!/bin/sh
# Refreshes BENCH_engine.json: the simulation engine's raw-speed benchmark —
# events dispatched per wall second on the arena/timing-wheel engine vs the
# retained container/heap reference path, across load shapes (batch =
# quantum-aligned mass simultaneity, the simulator's real workload shape;
# jitter = uniform random timestamps, the wheel's worst case) and pending-set
# depths, plus the schedule/cancel churn path. Emits per-row speedup ratios
# and the headline events/sec (load=batch, depth=1024).
#
# The script FAILS (exit 1) when any steady-state arena row reports a
# non-zero allocs/op — the zero-allocation contract CI enforces — or when
# run with PC_BENCH_GATE=1 and the headline speedup falls below 10x.
# Extra args go to `go test` (e.g. -benchtime=1x for a smoke run,
# -benchtime=2s for stable numbers).
set -e
cd "$(dirname "$0")/.."
out="$PWD/BENCH_engine.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run='^$' -bench='^(BenchmarkEngine|BenchmarkEngineScheduleCancel)$' \
	-benchmem "$@" ./internal/sim/ | tee "$tmp"

# Parse `BenchmarkName[-P]  iters  <value unit>...` lines into JSON, the
# same scheme as bench_stream.sh, then join arena rows with their ref
# counterparts into speedup ratios and apply the allocation gate.
awk -v cores="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" \
	-v gate="${PC_BENCH_GATE:-0}" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	line = sprintf("    {\"name\": \"%s\", \"iters\": %s", name, $2)
	ns[name] = ""; alloc[name] = ""; evps[name] = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		v = $i; u = $(i + 1)
		if (u == "ns/op")          { key = "ns_per_op"; ns[name] = v }
		else if (u == "B/op")      key = "bytes_per_op"
		else if (u == "allocs/op") { key = "allocs_per_op"; alloc[name] = v }
		else {
			key = u
			gsub(/[^A-Za-z0-9]+/, "_", key)
			key = "metric_" key
			if (u == "events/sec") evps[name] = v
		}
		line = line sprintf(", \"%s\": %s", key, v)
	}
	order[++n] = name
	lines[n] = line "}"
}
END {
	fails = 0
	# Zero-allocation contract: every steady-state arena row must report
	# 0 allocs/op (B/op may carry warmup-tail rounding; the gate is on
	# allocation count).
	for (i = 1; i <= n; i++) {
		name = order[i]
		if (name ~ /path=arena/ && alloc[name] != "" && alloc[name] + 0 != 0) {
			printf "FAIL: %s reports %s allocs/op (want 0)\n", name, alloc[name] > "/dev/stderr"
			fails++
		}
	}
	# Speedup ratios: join each arena row with its ref counterpart.
	m = 0
	for (i = 1; i <= n; i++) {
		name = order[i]
		if (name !~ /path=arena/) continue
		refname = name
		sub(/path=arena/, "path=ref", refname)
		if (ns[refname] == "" || ns[name] == "" || ns[name] + 0 == 0) continue
		sp = ns[refname] / ns[name]
		scen = name
		sub(/^[^\/]*\/?/, "", scen)   # drop "BenchmarkEngine*/"... keep load/depth
		sub(/path=arena\/?/, "", scen)
		if (scen == "") scen = "schedule_cancel"
		ratios[++m] = sprintf("    {\"scenario\": \"%s\", \"arena_ns_per_event\": %s, \"ref_ns_per_event\": %s, \"speedup\": %.2f}", scen, ns[name], ns[refname], sp)
		if (scen == "load=batch/depth=1024") headline = sp
		if (name ~ /load=batch\/depth=1024/ && evps[name] != "") headline_evps = evps[name]
	}
	if (gate + 0 == 1 && headline != "" && headline < 10) {
		printf "FAIL: headline speedup %.2fx below the 10x gate\n", headline > "/dev/stderr"
		fails++
	}
	printf "{\n  \"cores\": %d,\n", cores
	if (headline != "")      printf "  \"headline_speedup\": %.2f,\n", headline
	if (headline_evps != "") printf "  \"headline_events_per_sec\": %s,\n", headline_evps
	printf "  \"speedups\": [\n"
	for (i = 1; i <= m; i++) printf "%s%s\n", ratios[i], (i < m ? "," : "")
	printf "  ],\n  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
	printf "  ]\n}\n"
	exit (fails > 0 ? 1 : 0)
}' "$tmp" > "$out" || { cat "$out"; exit 1; }
cat "$out"
