package powercontainers_test

import (
	"fmt"
	"time"

	"powercontainers"
)

// ExampleNewSystem builds an instrumented machine, runs a workload and
// reads per-request accounting — the facility's core loop.
func ExampleNewSystem() {
	sys, err := powercontainers.NewSystem("SandyBridge",
		powercontainers.WithSeed(1))
	if err != nil {
		panic(err)
	}
	run, err := sys.NewRun("RSA-crypto", powercontainers.HalfLoad)
	if err != nil {
		panic(err)
	}
	report, err := run.Execute(4 * time.Second)
	if err != nil {
		panic(err)
	}
	fmt.Println(sys.MachineName(), sys.Cores(), "cores")
	fmt.Println("accounting works:", report.AccountedWatts > 0 && len(report.Requests) > 0)
	// Output:
	// SandyBridge 4 cores
	// accounting works: true
}

// ExampleRun_SetRequestPowerTarget shows a request-level control policy:
// power viruses get a 12 W budget while everything else runs untouched.
func ExampleRun_SetRequestPowerTarget() {
	sys, _ := powercontainers.NewSystem("SandyBridge", powercontainers.WithSeed(2))
	run, _ := sys.NewRun("GAE-Hybrid", powercontainers.HalfLoad)
	run.SetRequestPowerTarget("gae/virus", 12)
	report, err := run.Execute(5 * time.Second)
	if err != nil {
		panic(err)
	}
	throttled := 0
	for _, q := range report.Requests {
		if q.Type == "gae/virus" && q.DutyRatio < 0.999 {
			throttled++
		}
	}
	fmt.Println("viruses throttled:", throttled > 0)
	// Output:
	// viruses throttled: true
}
