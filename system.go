// Package powercontainers is a faithful reimplementation of "Power
// Containers: An OS Facility for Fine-Grained Power and Energy Management
// on Multicore Servers" (Shen, Shriraman, Dwarkadas, Zhang, Chen —
// ASPLOS 2013) over a simulated multicore testbed.
//
// A System couples one simulated machine (the paper's SandyBridge,
// Westmere or Woodcrest testbeds) with the power-container facility: an
// event-driven multicore power model attributing power to concurrently
// running tasks (including shared chip maintenance power), online
// measurement alignment and model recalibration, application-transparent
// request context tracking through sockets and fork, per-request power and
// energy accounting, and per-request duty-cycle power conditioning.
//
// Quick start:
//
//	sys, err := powercontainers.NewSystem("SandyBridge")
//	run, err := sys.NewRun("GAE-Hybrid", powercontainers.HalfLoad)
//	report, err := run.Execute(10 * time.Second)
//	for _, r := range report.Requests { fmt.Println(r.Type, r.EnergyJoules) }
//
// The cmd/pcbench tool regenerates every table and figure of the paper's
// evaluation; DESIGN.md maps each to the modules implementing it.
package powercontainers

import (
	"fmt"
	"time"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// Load selects the operating point of a run.
type Load int

const (
	// PeakLoad keeps the server fully utilized (closed-loop clients).
	PeakLoad Load = iota
	// HalfLoad drives roughly 50% utilization (Poisson arrivals).
	HalfLoad
)

// Attribution selects the power attribution approach (the three schemes of
// the paper's Figure 8).
type Attribution int

const (
	// CoreEventsOnly models per-task power from core-level events alone
	// (Eq. 1).
	CoreEventsOnly Attribution = iota
	// WithChipShare additionally attributes shared multicore maintenance
	// power (Eq. 2); the default.
	WithChipShare
	// WithRecalibration adds measurement-aligned online model
	// recalibration (§3.2).
	WithRecalibration
)

// Option configures a System.
type Option func(*config)

type config struct {
	approach Attribution
	baseSeed uint64
	capWatts float64
	audit    bool
}

// WithAttribution selects the attribution approach.
func WithAttribution(a Attribution) Option { return func(c *config) { c.approach = a } }

// WithSeed fixes the simulation seed (default 1); identical seeds yield
// bit-identical runs.
func WithSeed(seed uint64) Option { return func(c *config) { c.baseSeed = seed } }

// WithPowerCap enables fair request power conditioning with the given
// system active power target in watts: requests exceeding their share are
// throttled with per-core duty-cycle modulation while others run at full
// speed (§3.4).
func WithPowerCap(activeWatts float64) Option {
	return func(c *config) { c.capWatts = activeWatts }
}

// WithAudit attaches the runtime invariant auditor to the System's
// machine regardless of PC_AUDIT, with a collector private to this
// System: concurrent audited systems never interleave violation lists.
// Violations surface as errors from Run.Execute and are also readable via
// System.AuditViolations.
func WithAudit() Option { return func(c *config) { c.audit = true } }

// System is one simulated machine instrumented with the power-container
// facility, calibrated offline per §4.1.
type System struct {
	m   *experiments.Machine
	cfg config
	// auditC is the System's private audit collector (WithAudit), nil
	// when the system relies on the process default (PC_AUDIT).
	auditC *experiments.AuditCollector
}

// Machines lists the supported machine models.
func Machines() []string {
	var out []string
	for _, s := range cpu.Specs() {
		out = append(out, s.Name)
	}
	return out
}

// NewSystem builds an instrumented machine: "SandyBridge", "Westmere" or
// "Woodcrest". The first construction of each model runs the offline
// calibration procedure (cached afterwards).
func NewSystem(machine string, opts ...Option) (*System, error) {
	spec, err := cpu.SpecByName(machine)
	if err != nil {
		return nil, err
	}
	cfg := config{approach: WithChipShare, baseSeed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	var approach core.Approach
	switch cfg.approach {
	case CoreEventsOnly:
		approach = core.ApproachCoreOnly
	case WithChipShare:
		approach = core.ApproachChipShare
	case WithRecalibration:
		approach = core.ApproachRecalibrated
	default:
		return nil, fmt.Errorf("powercontainers: unknown attribution %d", cfg.approach)
	}
	var as experiments.Assembly
	var auditC *experiments.AuditCollector
	if cfg.audit {
		auditC = experiments.NewAuditCollector(true)
		as.Audit = auditC
	}
	m, err := as.NewMachine(spec, approach, cfg.baseSeed)
	if err != nil {
		return nil, err
	}
	if cfg.capWatts > 0 {
		m.Fac.EnableConditioning(cfg.capWatts)
	}
	return &System{m: m, cfg: cfg, auditC: auditC}, nil
}

// MachineName returns the machine model.
func (s *System) MachineName() string { return s.m.K.Spec.Name }

// AuditViolations returns the invariant violations collected by this
// System's auditor (WithAudit), formatted one per entry. It is empty for
// a clean or un-audited system.
func (s *System) AuditViolations() []string {
	var out []string
	for _, v := range s.auditC.Violations() {
		out = append(out, v.String())
	}
	return out
}

// Cores returns the machine's core count.
func (s *System) Cores() int { return s.m.K.Spec.Cores() }

// Workloads lists the supported named workloads.
func Workloads() []string {
	return []string{"RSA-crypto", "Solr", "WeBWorK", "Stress", "GAE-Vosao", "GAE-Hybrid"}
}

func workloadByName(name string) (workload.Workload, error) {
	switch name {
	case "RSA-crypto":
		return workload.RSA{}, nil
	case "Solr":
		return workload.Solr{}, nil
	case "WeBWorK":
		return workload.WeBWorK{}, nil
	case "Stress":
		return workload.Stress{}, nil
	case "GAE-Vosao":
		return workload.GAE{}, nil
	case "GAE-Hybrid":
		return workload.GAE{VirusLoadFraction: 0.5}, nil
	}
	return nil, fmt.Errorf("powercontainers: unknown workload %q (known: %v)", name, Workloads())
}

// Run is one prepared workload execution on a System. A System runs one
// Run; build a fresh System for another experiment.
type Run struct {
	sys   *System
	wl    workload.Workload
	load  Load
	gen   *server.LoadGen
	extra []*server.LoadGen
	// schedule is deferred virus/extra injections armed at Execute.
	schedule []func(until sim.Time)
	executed bool
	trace    bool
	targets  map[string]float64
	detector *core.AnomalyDetector
	clients  int
}

// AssignClients attributes requests to n simulated client principals with a
// Zipf popularity skew, enabling the per-client energy accounting of §1
// (Report.Clients).
func (r *Run) AssignClients(n int) { r.clients = n }

// EnableAnomalyDetection makes the run flag requests whose power sits far
// outside the running population — online power-virus detection ("pinpoint
// the sources of power spikes and anomalies", §1). Detected anomalies
// appear in the run's Report.
func (r *Run) EnableAnomalyDetection() {
	if r.detector == nil {
		r.detector = r.sys.m.Fac.EnableAnomalyDetection()
	}
}

// SetRequestPowerTarget installs a per-request active power target (watts)
// for every request whose type starts with typePrefix — the request-level
// control policies of §3.3. Requests exceeding their target are throttled
// with duty-cycle modulation once conditioning is enabled (WithPowerCap, or
// any positive target with the conditioner's system budget left unbounded).
func (r *Run) SetRequestPowerTarget(typePrefix string, watts float64) {
	if r.targets == nil {
		r.targets = map[string]float64{}
	}
	r.targets[typePrefix] = watts
}

// targetFor resolves the longest matching prefix target.
func (r *Run) targetFor(reqType string) float64 {
	best, bestLen := 0.0, -1
	for _, prefix := range experiments.SortedKeys(r.targets) {
		w := r.targets[prefix]
		if len(prefix) <= len(reqType) && reqType[:len(prefix)] == prefix && len(prefix) > bestLen {
			best, bestLen = w, len(prefix)
		}
	}
	return best
}

// NewRun deploys a named workload on the machine.
func (s *System) NewRun(workloadName string, load Load) (*Run, error) {
	wl, err := workloadByName(workloadName)
	if err != nil {
		return nil, err
	}
	return &Run{sys: s, wl: wl, load: load}, nil
}

// EnableRequestTracing captures per-request flow events (as in the paper's
// Figure 4) for every request of the run.
func (r *Run) EnableRequestTracing() { r.trace = true }

// InjectPowerViruses schedules sporadic power-virus requests (the paper's
// ~200-line cache/pipeline-saturating GAE app) at ratePerSec starting at
// the given offset into the run.
func (r *Run) InjectPowerViruses(ratePerSec float64, from time.Duration) error {
	if r.executed {
		return fmt.Errorf("powercontainers: run already executed")
	}
	m := r.sys.m
	vdep := workload.GAE{VirusLoadFraction: 1, DisableBackground: true}.Deploy(m.K, m.Rng.Fork(23))
	vgen := server.NewLoadGen(m.K, m.Fac, vdep)
	vgen.TraceRequests = r.trace
	r.extra = append(r.extra, vgen)
	vrng := m.Rng.Fork(29)
	r.schedule = append(r.schedule, func(until sim.Time) {
		m.Eng.At(sim.Time(from), func() {
			vgen.RunOpenLoop(ratePerSec, until, vrng)
		})
	})
	return nil
}

// Execute drives the simulation for the given virtual duration and returns
// the run's report. The measurement window excludes a warm-up of 1/5 of the
// duration (at least one second).
func (r *Run) Execute(d time.Duration) (*Report, error) {
	if r.executed {
		return nil, fmt.Errorf("powercontainers: run already executed")
	}
	r.executed = true
	m := r.sys.m
	until := sim.Time(d)
	if until < 2*sim.Second {
		return nil, fmt.Errorf("powercontainers: run duration %v too short (need ≥2s)", d)
	}
	dep := r.wl.Deploy(m.K, m.Rng.Fork(11))
	r.gen = server.NewLoadGen(m.K, m.Fac, dep)
	r.gen.TraceRequests = r.trace
	if r.clients > 0 {
		pool := server.NewClientPool(r.clients, 0.9, m.Rng.Fork(15))
		r.gen.Clients = pool
		for _, g := range r.extra {
			g.Clients = pool
		}
	}
	if r.targets != nil {
		r.gen.PowerTargetFor = r.targetFor
		// Per-request targets need the conditioner; leave the system
		// budget effectively unbounded unless a cap was configured.
		if r.sys.cfg.capWatts <= 0 {
			m.Fac.EnableConditioning(1e9)
		}
	}
	switch r.load {
	case PeakLoad:
		r.gen.RunClosedLoop(experiments.PeakClients(m.K.Spec), until)
	case HalfLoad:
		r.gen.RunOpenLoop(0.5*experiments.PeakRate(m.K.Spec, dep), until, m.Rng.Fork(13))
	default:
		return nil, fmt.Errorf("powercontainers: unknown load %d", r.load)
	}
	for _, arm := range r.schedule {
		arm(until)
	}

	warm := until / 5
	if warm < sim.Second {
		warm = sim.Second
	}
	// Align the window to Wattsup seconds.
	warm = (warm / sim.Second) * sim.Second
	end := (until / sim.Second) * sim.Second

	var acc0, bg0 float64
	m.Eng.At(warm, func() {
		acc0 = m.Fac.TotalAccountedEnergyJ()
		bg0 = m.Fac.Background.EnergyJ()
	})
	var acc1, bg1 float64
	m.Eng.At(end, func() {
		acc1 = m.Fac.TotalAccountedEnergyJ()
		bg1 = m.Fac.Background.EnergyJ()
	})
	m.Eng.RunUntil(until + 3*sim.Second)

	if err := m.FinalizeAudit(); err != nil {
		return nil, fmt.Errorf("powercontainers: %w", err)
	}

	return r.buildReport(warm, end, acc1-acc0, bg1-bg0)
}
