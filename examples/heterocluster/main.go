// Heterogeneity-aware request distribution: the paper's §4.4 case study.
// A two-machine cluster (a new SandyBridge next to an old Woodcrest) serves
// a combined GAE-Vosao + RSA-crypto workload. Power containers profile each
// request type's energy on both machines; the workload-aware dispatcher
// then keeps the requests with the strongest affinity to the efficient
// machine (RSA) there and overflows the rest (GAE), cutting cluster energy
// versus both a simple balancer and a machine-aware-only policy.
package main

import (
	"fmt"
	"log"

	"powercontainers"
)

func main() {
	fmt.Println("running the two-machine cluster experiment (fig14 + table1)...")
	fmt.Println("machines:", powercontainers.Machines())
	out, err := powercontainers.RunExperiment("fig14", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
