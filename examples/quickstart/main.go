// Quickstart: build an instrumented SandyBridge machine, run the GAE-Hybrid
// cloud workload (Vosao CMS requests mixed with power viruses) at half
// load, and print per-request power/energy accounting — the facility's core
// capability: isolating the power contribution of each request running
// concurrently on a shared multicore.
package main

import (
	"fmt"
	"log"
	"time"

	"powercontainers"
)

func main() {
	sys, err := powercontainers.NewSystem("SandyBridge",
		powercontainers.WithAttribution(powercontainers.WithRecalibration),
		powercontainers.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %s (%d cores)\n\n", sys.MachineName(), sys.Cores())

	run, err := sys.NewRun("GAE-Hybrid", powercontainers.HalfLoad)
	if err != nil {
		log.Fatal(err)
	}
	report, err := run.Execute(10 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Summary())
	fmt.Println()

	// The facility pinpoints the power hogs: list the five most
	// power-hungry requests of the window.
	top := report.Requests
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].MeanActiveWatts > top[i].MeanActiveWatts {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	fmt.Println("highest-power requests:")
	for i := 0; i < 5 && i < len(top); i++ {
		q := top[i]
		fmt.Printf("  %-12s %5.1f W over %8v busy -> %5.2f J\n",
			q.Type, q.MeanActiveWatts, q.CPUTime.Round(time.Millisecond), q.EnergyJoules)
	}

	fmt.Printf("\naccounting check: accounted %.1f W vs measured %.1f W active (error %.1f%%)\n",
		report.AccountedWatts, report.MeasuredActiveWatts, 100*report.ValidationError())
}
