// Power-virus isolation: the paper's §4.3 scenario. A Google App Engine
// server runs at peak load; halfway through, sporadic power-virus requests
// (simple cache/pipeline-saturating apps anyone could deploy) start
// arriving. With a power cap installed, the facility detects the
// per-request power excess and throttles only the viruses with per-core
// duty-cycle modulation — normal requests keep running at full speed,
// unlike indiscriminate full-machine throttling.
package main

import (
	"fmt"
	"log"
	"time"

	"powercontainers"
)

func main() {
	for _, capped := range []bool{false, true} {
		opts := []powercontainers.Option{
			powercontainers.WithAttribution(powercontainers.WithRecalibration),
			powercontainers.WithSeed(7),
		}
		label := "original system"
		if capped {
			opts = append(opts, powercontainers.WithPowerCap(56))
			label = "power containers, 56 W active cap"
		}
		sys, err := powercontainers.NewSystem("SandyBridge", opts...)
		if err != nil {
			log.Fatal(err)
		}
		run, err := sys.NewRun("GAE-Vosao", powercontainers.PeakLoad)
		if err != nil {
			log.Fatal(err)
		}
		run.EnableAnomalyDetection()
		if err := run.InjectPowerViruses(1.0, 5*time.Second); err != nil {
			log.Fatal(err)
		}
		report, err := run.Execute(15 * time.Second)
		if err != nil {
			log.Fatal(err)
		}

		var nNormal, nVirus int
		var dutyNormal, dutyVirus float64
		for _, q := range report.Requests {
			if q.Type == "gae/virus" {
				nVirus++
				dutyVirus += q.DutyRatio
			} else {
				nNormal++
				dutyNormal += q.DutyRatio
			}
		}
		fmt.Printf("== %s ==\n", label)
		fmt.Printf("measured active power: %.1f W\n", report.MeasuredActiveWatts)
		slow := func(duty float64, n int) float64 {
			s := 100 * (1 - duty/float64(n))
			if s < 0 {
				s = 0
			}
			return s
		}
		if nNormal > 0 {
			fmt.Printf("normal requests: %4d, mean duty ratio %.2f (slowdown %.1f%%)\n",
				nNormal, dutyNormal/float64(nNormal), slow(dutyNormal, nNormal))
		}
		if nVirus > 0 {
			fmt.Printf("power viruses:   %4d, mean duty ratio %.2f (slowdown %.1f%%)\n",
				nVirus, dutyVirus/float64(nVirus), slow(dutyVirus, nVirus))
		}
		for _, a := range report.Anomalies {
			fmt.Printf("anomaly pinpointed: %-10s at %7v drawing %.1f W (population %.1f W)\n",
				a.RequestType, a.At.Round(time.Millisecond), a.PowerWatts, a.BaselineWatts)
		}
		fmt.Println()
	}
}
