module powercontainers

go 1.22
