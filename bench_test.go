// Benchmarks regenerating every table and figure of the paper's evaluation
// (one per Figure 1–14 plus Table 1, the §4.1 coefficient calibration and
// the §3.5 overhead micro-benchmarks), plus ablation benches for the design
// choices called out in DESIGN.md. Key reproduced quantities are attached
// to each benchmark via ReportMetric, so `go test -bench=.` prints the
// paper's headline numbers next to the timings.
package powercontainers

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"

	"powercontainers/internal/align"
	"powercontainers/internal/calib"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

func BenchmarkFig1IncrementalPower(b *testing.B) {
	var first, later float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(1)
		if err != nil {
			b.Fatal(err)
		}
		sb := r.Machines[0]
		first = sb.IncrementW[0]
		later = (sb.IncrementW[1] + sb.IncrementW[2] + sb.IncrementW[3]) / 3
	}
	b.ReportMetric(first, "W/first-core")
	b.ReportMetric(later, "W/later-core")
}

func BenchmarkFig2AlignmentCrossCorrelation(b *testing.B) {
	var chipMs, wattsupMs float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(1)
		if err != nil {
			b.Fatal(err)
		}
		chipMs = float64(r.ChipPeak) / float64(sim.Millisecond)
		wattsupMs = float64(r.WattsupPeak) / float64(sim.Millisecond)
	}
	b.ReportMetric(chipMs, "ms-chip-delay")
	b.ReportMetric(wattsupMs, "ms-wattsup-delay")
}

func BenchmarkFig3AlignedTraces(b *testing.B) {
	// Figure 3 ships with the Figure 2 run; this bench isolates the trace
	// assembly and reports its measured/modeled gap.
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(1)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for j := range r.TraceMeasured {
			if r.TraceMeasured[j] == 0 {
				continue
			}
			d := r.TraceMeasured[j] - r.TraceModeled[j]
			sum += math.Abs(d) / r.TraceMeasured[j]
			n++
		}
		gap = sum / float64(n)
	}
	b.ReportMetric(100*gap, "%-trace-gap")
}

func BenchmarkFig4RequestTrace(b *testing.B) {
	var totalJ float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(1)
		if err != nil {
			b.Fatal(err)
		}
		totalJ = r.TotalEnergyJ
	}
	b.ReportMetric(totalJ, "J/request")
}

func BenchmarkCoefficientCalibration(b *testing.B) {
	// Calibrate from scratch each iteration (the experiment registry
	// caches per machine; the §4.1 procedure itself is what's measured:
	// 8 microbenchmarks × 4 load levels plus two least-squares fits).
	var fitErr float64
	for i := 0; i < b.N; i++ {
		r, err := calib.Calibrate(cpu.SandyBridge, calib.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		fitErr = r.FitErrEq2
	}
	b.ReportMetric(100*fitErr, "%-fit-err")
}

func BenchmarkFig5WorkloadPower(b *testing.B) {
	opts := experiments.Fig5Options{
		Machines:  []cpu.MachineSpec{cpu.SandyBridge},
		Workloads: experiments.EvalWorkloads(),
	}
	if testing.Short() {
		opts.Workloads = opts.Workloads[:2]
	}
	var maxW float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(opts, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.ActiveW > maxW {
				maxW = c.ActiveW
			}
		}
	}
	b.ReportMetric(maxW, "W-max-active")
}

func BenchmarkFig6RequestPowerDistribution(b *testing.B) {
	var sep float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range r.Workloads {
			if w.Name == "GAE-Hybrid" && len(w.PowerModes) >= 2 {
				sep = w.PowerModes[len(w.PowerModes)-1] - w.PowerModes[0]
			}
		}
	}
	b.ReportMetric(sep, "W-mode-separation")
}

func BenchmarkFig7RequestEnergyDistribution(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range r.Workloads {
			if w.Name != "GAE-Hybrid" {
				continue
			}
			virus, vosao := w.ByType["gae/virus"], w.ByType["vosao/read"]
			if virus != nil && vosao != nil && vosao.MeanEnergyJ.Mean() > 0 {
				ratio = virus.MeanEnergyJ.Mean() / vosao.MeanEnergyJ.Mean()
			}
		}
	}
	b.ReportMetric(ratio, "x-virus-energy")
}

func BenchmarkFig8ValidationError(b *testing.B) {
	opts := experiments.Fig8Options{}
	if testing.Short() {
		opts.Machines = []cpu.MachineSpec{cpu.SandyBridge}
		opts.Workloads = experiments.EvalWorkloads()[:3]
	}
	var worst1, worst2, worst3 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(opts, 1)
		if err != nil {
			b.Fatal(err)
		}
		worst1, worst2, worst3 = 0, 0, 0
		for _, w := range r.WorstByApproach {
			worst1 = math.Max(worst1, w[core.ApproachCoreOnly])
			worst2 = math.Max(worst2, w[core.ApproachChipShare])
			worst3 = math.Max(worst3, w[core.ApproachRecalibrated])
		}
	}
	b.ReportMetric(100*worst1, "%-worst-core-only")
	b.ReportMetric(100*worst2, "%-worst-chip-share")
	b.ReportMetric(100*worst3, "%-worst-recalibrated")
}

func BenchmarkFig9GAEBackground(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(1)
		if err != nil {
			b.Fatal(err)
		}
		share = (r.Cells[0].BackgroundShare + r.Cells[1].BackgroundShare) / 2
	}
	b.ReportMetric(100*share, "%-background")
}

func BenchmarkFig10CompositionPrediction(b *testing.B) {
	var wc, wu, wr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(1)
		if err != nil {
			b.Fatal(err)
		}
		wc, wu, wr = r.WorstContainers, r.WorstCPUUtil, r.WorstRate
	}
	b.ReportMetric(100*wc, "%-containers")
	b.ReportMetric(100*wu, "%-cpu-util-prop")
	b.ReportMetric(100*wr, "%-rate-prop")
}

func BenchmarkFig11PowerConditioning(b *testing.B) {
	var peakDrop float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(1)
		if err != nil {
			b.Fatal(err)
		}
		peakDrop = r.PeakOriginalW - r.PeakConditionedW
	}
	b.ReportMetric(peakDrop, "W-peak-cut")
}

func BenchmarkFig12FairThrottling(b *testing.B) {
	var normal, virus float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(1)
		if err != nil {
			b.Fatal(err)
		}
		normal, virus = r.NormalSlowdown, r.VirusSlowdown
	}
	b.ReportMetric(100*normal, "%-normal-slowdown")
	b.ReportMetric(100*virus, "%-virus-slowdown")
}

func BenchmarkFig13EnergyHeterogeneity(b *testing.B) {
	var rsa, stress float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Workload {
			case "RSA-crypto":
				rsa = row.Ratio
			case "Stress":
				stress = row.Ratio
			}
		}
	}
	b.ReportMetric(rsa, "ratio-rsa")
	b.ReportMetric(stress, "ratio-stress")
}

func BenchmarkFig14RequestDistribution(b *testing.B) {
	var vsSimple, vsMachine float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(1)
		if err != nil {
			b.Fatal(err)
		}
		vsSimple, vsMachine = r.SavingVsSimple, r.SavingVsMachineAware
	}
	b.ReportMetric(100*vsSimple, "%-saved-vs-simple")
	b.ReportMetric(100*vsMachine, "%-saved-vs-machine-aware")
}

func BenchmarkTable1ResponseTimes(b *testing.B) {
	var simpleMs, awareMs float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(1)
		if err != nil {
			b.Fatal(err)
		}
		simpleMs = r.Policies[0].RespMs["GAE-Vosao"]
		awareMs = r.Policies[2].RespMs["GAE-Vosao"]
	}
	b.ReportMetric(simpleMs, "ms-simple-balance")
	b.ReportMetric(awareMs, "ms-workload-aware")
}

// BenchmarkRegistryParallel measures the whole-registry run (`pcbench
// all`) serially (jobs=1) against the parallel runner (jobs = GOMAXPROCS,
// at least 4). Both produce byte-identical renderings; the delta is pure
// wall-clock. With BENCH_RUNNER_OUT set, the measured split is written as
// JSON (scripts/bench_runner.sh wraps this to refresh BENCH_runner.json).
func BenchmarkRegistryParallel(b *testing.B) {
	var ids []string
	for _, e := range ListExperiments() {
		// The overhead experiment runs testing.Benchmark internally,
		// which deadlocks on the benchmark framework's lock when invoked
		// from inside a running benchmark.
		if e.ID == "overhead" {
			continue
		}
		ids = append(ids, e.ID)
	}
	if testing.Short() {
		ids = []string{"fig1", "fig2", "fig4", "fig13", "ablations"}
	}
	jobs := runtime.GOMAXPROCS(0)
	if jobs < 4 {
		jobs = 4
	}
	// Warm the per-machine calibration cache so the serial leg doesn't
	// pay the one-time offline calibration that the parallel leg would
	// then get for free.
	for _, spec := range cpu.Specs() {
		if _, err := experiments.CalibrationFor(spec); err != nil {
			b.Fatal(err)
		}
	}
	run := func(b *testing.B, jobs int) float64 {
		for i := 0; i < b.N; i++ {
			if _, err := RunExperiments(ids, 1, jobs); err != nil {
				b.Fatal(err)
			}
		}
		return b.Elapsed().Seconds() / float64(b.N)
	}
	var serialSec, parallelSec float64
	b.Run("serial", func(b *testing.B) { serialSec = run(b, 1) })
	b.Run("parallel", func(b *testing.B) { parallelSec = run(b, jobs) })

	if out := os.Getenv("BENCH_RUNNER_OUT"); out != "" && serialSec > 0 && parallelSec > 0 {
		// On a single-core host the parallel leg cannot beat the serial
		// one — the "speedup" is pure scheduling noise. Record the host
		// shape and flag the measurement so readers (and CI) don't
		// mistake a degenerate run for a regression.
		cores := runtime.NumCPU()
		buf, err := json.MarshalIndent(map[string]any{
			"experiments":  len(ids),
			"cores":        cores,
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"jobs":         jobs,
			"degenerate":   cores < 2,
			"serial_sec":   serialSec,
			"parallel_sec": parallelSec,
			"speedup":      serialSec / parallelSec,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- §3.5 overhead micro-benchmarks on the facility itself ----

// benchRig builds a machine with a busy task for sampling benches.
func benchRig(b *testing.B) *experiments.Machine {
	b.Helper()
	m, err := experiments.NewMachine(cpu.SandyBridge, core.ApproachChipShare, 1)
	if err != nil {
		b.Fatal(err)
	}
	m.K.Spawn("spin", kernel.Script(kernel.OpCompute{
		BaseCycles: 1e12, Act: workload.ActStress,
	}), nil)
	m.Eng.RunUntil(10 * sim.Millisecond)
	return m
}

func BenchmarkOverheadMaintenanceOp(b *testing.B) {
	m := benchRig(b)
	act := workload.ActStress
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.K.Cores[0].AdvanceBusy(sim.Millisecond, act)
		m.Fac.RewindBaseline(0, sim.Millisecond)
		m.Fac.SampleNow(0)
	}
}

func BenchmarkOverheadRecalibration(b *testing.B) {
	cal, err := experiments.CalibrationFor(cpu.SandyBridge)
	if err != nil {
		b.Fatal(err)
	}
	m := benchRig(b)
	rec := align.NewRecalibrator(m.Wattsup, model.ScopeMachine, cal.Samples)
	rec.MinOnline = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Refit(cal.Eq2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverheadDutyCycleRegister(b *testing.B) {
	m := benchRig(b)
	c := m.K.Cores[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.DutyLevel()
		c.SetDutyLevel(4 + i%2)
	}
}

func BenchmarkOverheadChipShareEstimate(b *testing.B) {
	m := benchRig(b)
	spec := m.K.Spec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.ChipShare(spec, m.K.Cores, 0, 1.0, m.K)
	}
}

// ---- ablation benches for DESIGN.md's called-out design choices ----

// BenchmarkAblationChipShareVsOracle compares the paper's
// synchronization-free Eq. 3 chip-share estimate against an oracle with
// global knowledge of sibling activity (identical seeds, identical
// executions): the metric is the mean absolute deviation of the system
// chip-share series — the price of avoiding cross-core synchronization.
func BenchmarkAblationChipShareVsOracle(b *testing.B) {
	var dev, maxSum float64
	for i := 0; i < b.N; i++ {
		var err error
		dev, maxSum, err = experiments.AblationChipShare(17)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*dev, "%-chipshare-deviation")
	b.ReportMetric(maxSum, "max-chipshare-sum")
}

// BenchmarkAblationPerSegmentTagging quantifies the misattribution of the
// naive single-tag-per-socket scheme the paper warns against (§3.3), on a
// pipelined shared connection where the race actually occurs.
func BenchmarkAblationPerSegmentTagging(b *testing.B) {
	var mis float64
	for i := 0; i < b.N; i++ {
		var err error
		mis, err = experiments.AblationTagging(19)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*mis, "%-per-request-misattribution")
}

// BenchmarkAblationObserverCompensation quantifies the counter perturbation
// the observer-effect compensation removes (§3.5).
func BenchmarkAblationObserverCompensation(b *testing.B) {
	var inflation float64
	for i := 0; i < b.N; i++ {
		var err error
		inflation, err = experiments.AblationObserver(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*inflation, "%-counter-inflation")
}

// BenchmarkAblationUserLevelTransfers quantifies the paper's §3.3
// limitation and its future-work fix: per-request attribution error of an
// event-driven server without vs with kernel-observable user-level stage
// transfers.
func BenchmarkAblationUserLevelTransfers(b *testing.B) {
	var mis float64
	for i := 0; i < b.N; i++ {
		var err error
		mis, err = experiments.AblationUserTransfers(41)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*mis, "%-per-request-misattribution")
}
