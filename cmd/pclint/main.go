// Command pclint runs the repo's custom analyzer suite (detlint, maporder,
// hooklint, floatsafe, unitsafe, seedflow, hotalloc) over Go packages. It
// speaks the `go vet -vettool` unitchecker protocol — including the
// cross-package fact files (vetx) that carry unit overrides, seed
// provenance summaries, and allocation summaries between compilation
// units — so the canonical invocations are:
//
//	go build -o bin/pclint ./cmd/pclint
//	go vet -vettool=$PWD/bin/pclint ./...
//
// As a convenience, invoking it directly with package patterns re-executes
// itself through go vet:
//
//	pclint ./...
//
// Diagnostics can be suppressed per line with
//
//	//pclint:allow <analyzer> <reason>
//
// on the offending line or the line immediately above. A directive that
// suppresses nothing is itself reported stale, so dead annotations cannot
// accumulate.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"powercontainers/internal/analysis"
	"powercontainers/internal/analysis/pclint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	suite := pclint.Suite()
	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		usage(suite)
		return 0
	}
	for _, a := range args {
		switch {
		case a == "-V=full":
			return printVersion()
		case a == "-flags":
			// No analyzer flags; tell the build system so.
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.RunUnit(args[0], suite)
	}
	// Treat the arguments as package patterns and delegate to go vet,
	// pointing it back at this executable as the vettool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: cannot locate own executable: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		return 1
	}
	return 0
}

// printVersion implements the -V=full build-caching handshake: the output
// must change whenever the tool's behavior might, so it hashes the
// executable itself.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}

func usage(suite []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "pclint enforces the repo's determinism, hook-seam, numeric-safety,\nunit-dimension, seed-provenance, and hotpath-allocation invariants.\n\n")
	fmt.Fprintf(os.Stderr, "usage:\n  pclint ./...                 # lint package patterns (delegates to go vet)\n")
	fmt.Fprintf(os.Stderr, "  go vet -vettool=pclint ./... # explicit vettool form\n\nanalyzers:\n")
	for _, a := range suite {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with `//pclint:allow <analyzer> <reason>` on the\noffending line or the line above.\n")
}
