package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot resolves the module root from the test's working directory
// (cmd/pclint).
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}

// buildPclint compiles the multichecker into a temporary directory.
func buildPclint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pclint")
	cmd := exec.Command("go", "build", "-o", bin, "powercontainers/cmd/pclint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/pclint: %v\n%s", err, out)
	}
	return bin
}

func TestVersionHandshake(t *testing.T) {
	bin := buildPclint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("pclint -V=full: %v", err)
	}
	// The go command requires `<name> version <words...> buildID=<hex>`.
	re := regexp.MustCompile(`^\S+ version devel comments-go-here buildID=[0-9a-f]{64}\n$`)
	if !re.Match(out) {
		t.Errorf("-V=full output %q does not match the vettool handshake", out)
	}
}

func TestFlagsHandshake(t *testing.T) {
	bin := buildPclint(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("pclint -flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("-flags printed %q, want []", out)
	}
}

func TestVetCleanPackage(t *testing.T) {
	bin := buildPclint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/export")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over a clean package failed: %v\n%s", err, out)
	}
}

// TestVetFlagsViolation builds a throwaway module whose package lands in
// detlint's scope and holds a wall-clock call, and checks that the
// vettool run fails with the expected diagnostic.
func TestVetFlagsViolation(t *testing.T) {
	bin := buildPclint(t)
	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := filepath.Join(mod, "experiments")
	if err := os.Mkdir(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package experiments

import "time"

func Stamp() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(pkg, "exp.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over a violating module:\n%s", out)
	}
	if !strings.Contains(string(out), "wall-clock call time.Now") {
		t.Errorf("vet output lacks the detlint diagnostic:\n%s", out)
	}
}

// TestVetCrossPackageFacts exercises the two-pass facts engine end to end
// through the real unitchecker protocol: a throwaway multi-package module
// where every diagnostic in the consumer package depends on a fact
// exported by a dependency's vetx file — a `// unit:` result override, a
// seed-parameter summary, and a transitive allocation summary. The go
// command orders the units and threads the fact files; if the export or
// import side of the protocol broke, all three diagnostics would vanish.
func TestVetCrossPackageFacts(t *testing.T) {
	bin := buildPclint(t)
	mod := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"sim/sim.go": `package sim

type Rand struct{ s uint64 }

func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

func (r *Rand) Uint64() uint64 { r.s = r.s*6364136223846793005 + 1; return r.s }
`,
		"runner/runner.go": `package runner

func SeedFor(base, key uint64) uint64 { return base ^ key*0x9e3779b97f4a7c15 }
`,
		// power exports the facts: a result-unit override, a seed-param
		// summary, and an allocation summary.
		"power/power.go": `package power

import "tmpmod/sim"

// Drain returns the energy drained over the window.
// unit: J
func Drain() float64 { return 42 }

// MakeRand seeds a generator; its parameter becomes a caller obligation.
func MakeRand(seed uint64) *sim.Rand { return sim.NewRand(seed) }

// Fill appends a record; hot-path callers inherit the allocation.
func Fill(dst []float64) []float64 { return append(dst, 1) }
`,
		// core consumes them; every diagnostic here needs imported facts.
		"core/core.go": `package core

import (
	"tmpmod/power"
	"tmpmod/sim"
)

func Mix(freqHz float64) float64 {
	return power.Drain() + freqHz
}

func Spin() *sim.Rand {
	return power.MakeRand(99)
}

//pclint:hotpath
func Hot(dst []float64) []float64 {
	return power.Fill(dst)
}
`,
	}
	for name, src := range files {
		path := filepath.Join(mod, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over the cross-package fixture:\n%s", out)
	}
	for _, want := range []string{
		`unit mismatch: mixing J and Hz`,
		`seed provenance: seed parameter seed of MakeRand does not trace`,
		`hotpath Hot: call to Fill which allocates`,
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output lacks %q:\n%s", want, out)
		}
	}
}
