package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot resolves the module root from the test's working directory
// (cmd/pclint).
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}

// buildPclint compiles the multichecker into a temporary directory.
func buildPclint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pclint")
	cmd := exec.Command("go", "build", "-o", bin, "powercontainers/cmd/pclint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/pclint: %v\n%s", err, out)
	}
	return bin
}

func TestVersionHandshake(t *testing.T) {
	bin := buildPclint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("pclint -V=full: %v", err)
	}
	// The go command requires `<name> version <words...> buildID=<hex>`.
	re := regexp.MustCompile(`^\S+ version devel comments-go-here buildID=[0-9a-f]{64}\n$`)
	if !re.Match(out) {
		t.Errorf("-V=full output %q does not match the vettool handshake", out)
	}
}

func TestFlagsHandshake(t *testing.T) {
	bin := buildPclint(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("pclint -flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("-flags printed %q, want []", out)
	}
}

func TestVetCleanPackage(t *testing.T) {
	bin := buildPclint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/export")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over a clean package failed: %v\n%s", err, out)
	}
}

// TestVetFlagsViolation builds a throwaway module whose package lands in
// detlint's scope and holds a wall-clock call, and checks that the
// vettool run fails with the expected diagnostic.
func TestVetFlagsViolation(t *testing.T) {
	bin := buildPclint(t)
	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := filepath.Join(mod, "experiments")
	if err := os.Mkdir(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package experiments

import "time"

func Stamp() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(pkg, "exp.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed over a violating module:\n%s", out)
	}
	if !strings.Contains(string(out), "wall-clock call time.Now") {
		t.Errorf("vet output lacks the detlint diagnostic:\n%s", out)
	}
}
