// Command pctrace captures one WeBWorK request execution and prints its
// per-stage power/energy attribution and request-flow events — the paper's
// Figure 4 demonstration of application-transparent multi-stage request
// tracking.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"powercontainers"
	"powercontainers/internal/experiments"
	"powercontainers/internal/trace"
)

// The -seed flag is the run's registered base seed: every generator in
// the simulation derives from it.
//
//pclint:seed
var seed = flag.Uint64("seed", 1, "simulation seed")

func main() {
	summary := flag.Bool("summary", false, "print only the run summary via the public API")
	flag.Parse()

	if *summary {
		sys, err := powercontainers.NewSystem("SandyBridge", powercontainers.WithSeed(*seed))
		if err != nil {
			fail(err)
		}
		run, err := sys.NewRun("WeBWorK", powercontainers.HalfLoad)
		if err != nil {
			fail(err)
		}
		run.EnableRequestTracing()
		rep, err := run.Execute(6 * time.Second)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Summary())
		return
	}

	r, err := experiments.Fig4(*seed)
	if err != nil {
		fail(err)
	}
	fmt.Print(r.Render())
	fmt.Println()
	tl := trace.Timeline{Width: 72, Origin: r.Request.Arrive}
	fmt.Print(tl.Render(r.Request.Cont))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pctrace:", err)
	os.Exit(1)
}
