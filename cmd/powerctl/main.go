// Command powerctl manages a persistent power-container hierarchy store:
// tenants, services, budgets, and their accumulated usage, kept in the
// versioned JSON state file the core package's JSONState backend defines.
//
// Usage:
//
//	powerctl -state FILE create tenant NAME
//	powerctl -state FILE create service TENANT SERVICE
//	powerctl -state FILE budget TENANT [-power W] [-energy J]
//	powerctl -state FILE list
//	powerctl -state FILE inspect [TENANT]
//	powerctl -state FILE stats
//	powerctl -state FILE ingest SNAPSHOT.json
//
// create and budget mutate structure and budgets; ingest merges a
// hierarchy snapshot exported from a run (usage accumulates, structure is
// adopted, non-zero budgets replace); stats and list render the store.
// All writes go through the atomic versioned JSON backend, so a crashed
// powerctl never corrupts the store.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"powercontainers/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "powerctl:", err)
		os.Exit(1)
	}
}

const usageText = `usage:
  powerctl -state FILE create tenant NAME
  powerctl -state FILE create service TENANT SERVICE
  powerctl -state FILE budget TENANT [-power W] [-energy J]
  powerctl -state FILE list
  powerctl -state FILE inspect [TENANT]
  powerctl -state FILE stats
  powerctl -state FILE ingest SNAPSHOT.json`

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("powerctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	statePath := fs.String("state", "", "hierarchy state file (versioned JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stderr, usageText)
		return fmt.Errorf("missing subcommand")
	}
	if *statePath == "" {
		return fmt.Errorf("-state FILE is required")
	}
	st := core.NewJSONState(*statePath)
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "create":
		return runCreate(st, rest)
	case "budget":
		return runBudget(st, rest)
	case "list":
		return runList(st, rest, stdout)
	case "inspect":
		return runInspect(st, rest, stdout)
	case "stats":
		return runStats(st, rest, stdout)
	case "ingest":
		return runIngest(st, rest, stdout)
	default:
		fmt.Fprintln(stderr, usageText)
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// load reads the store, returning an empty current-version snapshot for a
// store that does not exist yet.
func load(st core.HierarchyState) (core.HierarchySnapshot, error) {
	snap, _, err := st.Load()
	return snap, err
}

func runCreate(st core.HierarchyState, args []string) error {
	snap, err := load(st)
	if err != nil {
		return err
	}
	switch {
	case len(args) == 2 && args[0] == "tenant":
		if strings.TrimSpace(args[1]) == "" {
			return fmt.Errorf("create tenant: empty name")
		}
		snap.EnsureTenant(args[1])
	case len(args) == 3 && args[0] == "service":
		if strings.TrimSpace(args[1]) == "" || strings.TrimSpace(args[2]) == "" {
			return fmt.Errorf("create service: empty tenant or service name")
		}
		snap.EnsureService(args[1], args[2])
	default:
		return fmt.Errorf("usage: create tenant NAME | create service TENANT SERVICE")
	}
	return st.Save(snap)
}

func runBudget(st core.HierarchyState, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: budget TENANT [-power W] [-energy J]")
	}
	tenant, args := args[0], args[1:]
	fs := flag.NewFlagSet("budget", flag.ContinueOnError)
	powerW := fs.Float64("power", 0, "tenant power budget in watts (0 clears)")
	energyJ := fs.Float64("energy", 0, "tenant energy budget in joules (0 clears)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *powerW < 0 || *energyJ < 0 {
		return fmt.Errorf("budget: negative budget")
	}
	snap, err := load(st)
	if err != nil {
		return err
	}
	snap.EnsureTenant(tenant).Budget = core.Budget{PowerW: *powerW, EnergyJ: *energyJ}
	return st.Save(snap)
}

func runList(st core.HierarchyState, args []string, stdout io.Writer) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: list")
	}
	snap, err := load(st)
	if err != nil {
		return err
	}
	if len(snap.Tenants) == 0 {
		fmt.Fprintln(stdout, "no tenants")
		return nil
	}
	for _, t := range snap.Tenants {
		fmt.Fprintf(stdout, "%s%s\n", t.Name, budgetSuffix(t.Budget))
		for _, s := range t.Services {
			fmt.Fprintf(stdout, "  %s/%s  (%d requests)\n", t.Name, s.Name, s.Requests)
		}
	}
	return nil
}

func budgetSuffix(b core.Budget) string {
	if b.IsZero() {
		return ""
	}
	var parts []string
	if b.PowerW > 0 {
		parts = append(parts, fmt.Sprintf("power %g W", b.PowerW))
	}
	if b.EnergyJ > 0 {
		parts = append(parts, fmt.Sprintf("energy %g J", b.EnergyJ))
	}
	return "  [budget: " + strings.Join(parts, ", ") + "]"
}

func runInspect(st core.HierarchyState, args []string, stdout io.Writer) error {
	snap, err := load(st)
	if err != nil {
		return err
	}
	var v any
	switch len(args) {
	case 0:
		v = snap
	case 1:
		t := snap.FindTenant(args[0])
		if t == nil {
			return fmt.Errorf("inspect: unknown tenant %q", args[0])
		}
		v = t
	default:
		return fmt.Errorf("usage: inspect [TENANT]")
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(out))
	return nil
}

func runStats(st core.HierarchyState, args []string, stdout io.Writer) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: stats")
	}
	snap, err := load(st)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-24s %10s %12s %12s %12s\n", "tenant/service", "requests", "cpu J", "device J", "total J")
	var grand core.ServiceSnapshot
	for _, t := range snap.Tenants {
		tot := t.Totals()
		fmt.Fprintf(stdout, "%-24s %10d %12.6f %12.6f %12.6f\n",
			t.Name, tot.Requests, tot.CPUEnergyJ, tot.DeviceEnergyJ, tot.EnergyJ())
		for _, s := range t.Services {
			fmt.Fprintf(stdout, "  %-22s %10d %12.6f %12.6f %12.6f\n",
				t.Name+"/"+s.Name, s.Requests, s.CPUEnergyJ, s.DeviceEnergyJ, s.EnergyJ())
		}
		grand.Requests += tot.Requests
		grand.CPUEnergyJ += tot.CPUEnergyJ
		grand.DeviceEnergyJ += tot.DeviceEnergyJ
	}
	fmt.Fprintf(stdout, "%-24s %10d %12.6f %12.6f %12.6f\n",
		"total", grand.Requests, grand.CPUEnergyJ, grand.DeviceEnergyJ, grand.EnergyJ())
	return nil
}

func runIngest(st core.HierarchyState, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: ingest SNAPSHOT.json")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var other core.HierarchySnapshot
	if err := json.Unmarshal(data, &other); err != nil {
		return fmt.Errorf("ingest %s: %w", args[0], err)
	}
	if other.Version != core.SnapshotVersion {
		return fmt.Errorf("ingest %s: snapshot version %d, want %d", args[0], other.Version, core.SnapshotVersion)
	}
	snap, err := load(st)
	if err != nil {
		return err
	}
	snap.Merge(other)
	if err := st.Save(snap); err != nil {
		return err
	}
	n := 0
	for _, t := range other.Tenants {
		n += len(t.Services)
	}
	fmt.Fprintf(stdout, "merged %d tenants (%d services) from %s\n", len(other.Tenants), n, args[0])
	return nil
}
