package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// ctl runs one powerctl invocation against the given store, failing the
// test on error and returning stdout.
func ctl(t *testing.T, state string, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	full := append([]string{"-state", state}, args...)
	if err := run(full, &stdout, &stderr); err != nil {
		t.Fatalf("powerctl %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String()
}

// TestRoundTrip is the end-to-end CLI contract: create structure, set a
// budget, ingest a real run's roll-up snapshot, and read everything back
// through list, stats, and inspect — all via the persistent JSON store.
func TestRoundTrip(t *testing.T) {
	state := filepath.Join(t.TempDir(), "hierarchy.json")

	ctl(t, state, "create", "tenant", "acme")
	ctl(t, state, "create", "service", "acme", "web")
	ctl(t, state, "create", "service", "mallory", "burn")
	ctl(t, state, "budget", "mallory", "-power", "12")

	out := ctl(t, state, "list")
	for _, want := range []string{"acme/web", "mallory/burn", "budget: power 12 W"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}

	// A real simulated run filed under the same hierarchy, exported as a
	// snapshot and ingested into the store.
	m, err := experiments.NewMachine(cpu.SandyBridge, core.ApproachChipShare, 7)
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewHierarchy()
	m.Fac.AttachHierarchy(h)
	dep := workload.Stress{}.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	gen.ServiceFor = func(string) (string, string) { return "acme", "web" }
	gen.RunOpenLoop(50, 2*sim.Second, m.Rng.Fork(13))
	m.Eng.RunUntil(3 * sim.Second)

	snap := h.Snapshot()
	tot := snap.FindTenant("acme").Totals()
	if tot.Requests == 0 || tot.EnergyJ() <= 0 {
		t.Fatalf("run produced no usage to ingest: %+v", tot)
	}
	snapPath := filepath.Join(t.TempDir(), "run.json")
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out = ctl(t, state, "ingest", snapPath)
	if !strings.Contains(out, "merged 1 tenants") {
		t.Errorf("unexpected ingest report: %s", out)
	}
	// Ingesting the same roll-up twice must accumulate, not overwrite.
	ctl(t, state, "ingest", snapPath)

	var inspected core.TenantSnapshot
	if err := json.Unmarshal([]byte(ctl(t, state, "inspect", "acme")), &inspected); err != nil {
		t.Fatalf("inspect output is not a tenant snapshot: %v", err)
	}
	got := inspected.Totals()
	if got.Requests != 2*tot.Requests {
		t.Errorf("after two ingests: %d requests, want %d", got.Requests, 2*tot.Requests)
	}
	if diff := got.EnergyJ() - 2*tot.EnergyJ(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("after two ingests: %.9f J, want %.9f J", got.EnergyJ(), 2*tot.EnergyJ())
	}

	stats := ctl(t, state, "stats")
	if !strings.Contains(stats, "acme/web") || !strings.Contains(stats, "total") {
		t.Errorf("stats output missing rows:\n%s", stats)
	}

	// The budget survives the ingest (the run snapshot carries none) and
	// the store round-trips through a reconstructed live hierarchy.
	var full core.HierarchySnapshot
	if err := json.Unmarshal([]byte(ctl(t, state, "inspect")), &full); err != nil {
		t.Fatal(err)
	}
	if b := full.FindTenant("mallory").Budget; b.PowerW != 12 {
		t.Errorf("mallory budget after ingest: %+v, want PowerW 12", b)
	}
	if _, err := core.HierarchyFromSnapshot(full); err != nil {
		t.Errorf("stored snapshot does not rebuild a live hierarchy: %v", err)
	}
}

// TestErrors pins the CLI's refusal paths: a subcommand is required, the
// store flag is required, unknown tenants fail inspect, and ingest rejects
// foreign snapshot versions.
func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, &out); err == nil {
		t.Error("no arguments: want an error")
	}
	if err := run([]string{"list"}, &out, &out); err == nil {
		t.Error("missing -state: want an error")
	}
	state := filepath.Join(t.TempDir(), "hierarchy.json")
	if err := run([]string{"-state", state, "frobnicate"}, &out, &out); err == nil {
		t.Error("unknown subcommand: want an error")
	}
	if err := run([]string{"-state", state, "inspect", "ghost"}, &out, &out); err == nil {
		t.Error("inspect of unknown tenant: want an error")
	}
	if err := run([]string{"-state", state, "budget", "acme", "-power", "-1"}, &out, &out); err == nil {
		t.Error("negative budget: want an error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-state", state, "ingest", bad}, &out, &out); err == nil {
		t.Error("ingest of foreign version: want an error")
	}
}
