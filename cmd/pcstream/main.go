// Command pcstream runs the streaming attribution engine over a
// simulated machine and prints the per-container power/energy record
// stream in its canonical line encoding — the online counterpart of
// pcbench's batch experiments.
//
// Usage:
//
//	pcstream [-machine M] [-workload W] [-load F] [-attribution A]
//	         [-duration S] [-tick MS] [-seed N]
//	         [-checkpoint FILE] [-checkpoint-every N]
//	pcstream -resume FILE [same machine/workload/seed flags] ...
//
// The stream is deterministic: the same flags produce the byte-identical
// stream. -checkpoint writes the engine's latest checkpoint to FILE;
// -resume rebuilds the identically configured machine, replays quietly to
// the checkpoint, verifies the state matches, and continues the stream
// from the cut — emitting exactly the records the uninterrupted run would
// have emitted after it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pcstream:", err)
		os.Exit(1)
	}
}

// baseSeed holds the parsed -seed flag: the stream's registered base
// seed, from which every generator in the run derives.
//
//pclint:seed
var baseSeed uint64

// lineSink writes each record's canonical line encoding to a writer.
type lineSink struct {
	w       *bufio.Writer
	scratch []byte
	err     error
}

func (s *lineSink) OnRecord(r stream.Record) {
	s.scratch = stream.AppendRecord(s.scratch[:0], r)
	if _, err := s.w.Write(s.scratch); err != nil && s.err == nil {
		s.err = err
	}
}

// pickWorkload resolves a -workload flag value.
func pickWorkload(name string) (workload.Workload, error) {
	for _, wl := range []workload.Workload{
		workload.Stress{}, workload.GAE{}, workload.WeBWorK{},
		workload.EventServer{}, workload.Solr{}, workload.RSA{},
	} {
		if strings.EqualFold(wl.Name(), name) {
			return wl, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// pickApproach resolves an -attribution flag value.
func pickApproach(name string) (core.Approach, error) {
	for _, ap := range experiments.Approaches() {
		if ap.String() == name {
			return ap, nil
		}
	}
	return 0, fmt.Errorf("unknown attribution approach %q (want core-only, chip-share, or recalibrated)", name)
}

// pickMachine resolves a -machine flag value.
func pickMachine(name string) (cpu.MachineSpec, error) {
	for _, spec := range cpu.Specs() {
		if strings.EqualFold(spec.Name, name) {
			return spec, nil
		}
	}
	return cpu.MachineSpec{}, fmt.Errorf("unknown machine %q", name)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcstream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	machine := fs.String("machine", "SandyBridge", "machine spec name")
	wlName := fs.String("workload", "Stress", "workload name")
	load := fs.Float64("load", 0.5, "open-loop arrival rate as a fraction of peak")
	attribution := fs.String("attribution", "recalibrated", "attribution approach: core-only, chip-share, recalibrated")
	durationS := fs.Float64("duration", 10, "virtual seconds to stream")
	tickMS := fs.Int64("tick", 100, "streaming tick in virtual milliseconds")
	seed := fs.Uint64("seed", 1, "simulation seed (identical seeds reproduce identical streams)")
	cpPath := fs.String("checkpoint", "", "write the latest checkpoint JSON to this file")
	cpEvery := fs.Int("checkpoint-every", 0, "take an automatic checkpoint every N ticks (0 = only at the end)")
	resume := fs.String("resume", "", "resume from a checkpoint file written by -checkpoint (requires identical machine/workload/seed flags)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *durationS <= 0 || *tickMS <= 0 {
		return fmt.Errorf("duration and tick must be positive")
	}
	spec, err := pickMachine(*machine)
	if err != nil {
		return err
	}
	wl, err := pickWorkload(*wlName)
	if err != nil {
		return err
	}
	ap, err := pickApproach(*attribution)
	if err != nil {
		return err
	}

	baseSeed = *seed
	m, err := experiments.NewMachine(spec, ap, baseSeed)
	if err != nil {
		return err
	}
	horizon := sim.Time(*durationS * float64(sim.Second))
	dep := wl.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	gen.RunOpenLoop(*load*experiments.PeakRate(m.K.Spec, dep), horizon, m.Rng.Fork(13))

	var meter power.Meter
	scope := model.ScopeMachine
	if r := m.Fac.Recalibrator(); r != nil {
		meter, scope = r.Meter, r.Scope
	} else {
		meter, scope = m.Chip, model.ScopePackage
	}
	src := stream.Sources{Eng: m.Eng, Fac: m.Fac, Meter: meter, Scope: scope}
	cfg := stream.Config{Tick: sim.Time(*tickMS) * sim.Millisecond, CheckpointEvery: *cpEvery}

	var e *stream.Engine
	if *resume != "" {
		data, err := os.ReadFile(*resume)
		if err != nil {
			return err
		}
		cp, err := stream.DecodeCheckpoint(data)
		if err != nil {
			return err
		}
		if e, err = stream.ReplayTo(src, cfg, cp); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "resumed at tick %d (t=%s) from %s\n", e.Tick(), sim.FormatTime(e.Now()), *resume)
	} else {
		e = stream.New(src, cfg)
	}

	out := bufio.NewWriter(stdout)
	sink := &lineSink{w: out}
	hasher := stream.NewHasher()
	e.Sink = stream.Tee{sink, hasher}
	e.RunUntil(horizon)
	if err := out.Flush(); err != nil {
		return err
	}
	if sink.err != nil {
		return sink.err
	}

	if *cpPath != "" {
		cp := e.Checkpoint()
		if err := os.WriteFile(*cpPath, stream.EncodeCheckpoint(cp), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "checkpoint at tick %d written to %s\n", cp.Tick, *cpPath)
	}
	fmt.Fprintf(stderr, "streamed %d ticks, %d records, %s J attributed, stream sha256 %s\n",
		e.Tick(), hasher.Count(), fmt.Sprintf("%.3f", e.CumAttributedJ()), hasher.Sum())
	return nil
}
