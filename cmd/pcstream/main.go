// Command pcstream runs the streaming attribution engine over a
// simulated machine and prints the per-container power/energy record
// stream in its canonical line encoding — the online counterpart of
// pcbench's batch experiments.
//
// Usage:
//
//	pcstream [-machine M] [-workload W] [-load F] [-attribution A]
//	         [-duration S] [-tick MS] [-seed N]
//	         [-checkpoint FILE] [-checkpoint-every N]
//	pcstream -resume FILE [same machine/workload/seed flags] ...
//	pcstream -dir DIR [-supervise [-max-restarts N] [-backoff-ms MS]
//	         [-crash SPEC]...] [same flags] ...
//
// The stream is deterministic: the same flags produce the byte-identical
// stream. -checkpoint writes the engine's latest checkpoint to FILE;
// -resume rebuilds the identically configured machine, replays quietly to
// the checkpoint, verifies the state matches, and continues the stream
// from the cut — emitting exactly the records the uninterrupted run would
// have emitted after it.
//
// -dir switches to durable mode: every record is appended to a CRC-framed
// WAL in DIR, checkpoints persist beside it, and on startup the store
// recovers (torn tails repaired, newest valid checkpoint loaded, WAL tail
// replayed) and resumes exactly where the durable stream ends — rerunning
// the same command after any number of kills re-emits nothing and loses
// nothing. What is printed is the stream read back from the WAL, so
// stdout is byte-identical to an uninterrupted run regardless of crash
// history. -supervise adds an in-process supervisor: attempts that die
// with a crash are restarted with exponential backoff (-backoff-ms, 0
// disables waiting) within a restart budget (-max-restarts), and repeated
// deaths without durable progress abort as a crash loop. Each -crash flag
// (repeatable) injects one faults.CrashPlan into the corresponding
// attempt over an in-memory filesystem — the e2e crashmatrix harness.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/durable"
	"powercontainers/internal/experiments"
	"powercontainers/internal/faults"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pcstream:", err)
		os.Exit(1)
	}
}

// baseSeed holds the parsed -seed flag: the stream's registered base
// seed, from which every generator in the run derives.
//
//pclint:seed
var baseSeed uint64

// lineSink writes each record's canonical line encoding to a writer.
type lineSink struct {
	w       *bufio.Writer
	scratch []byte
	err     error
}

func (s *lineSink) OnRecord(r stream.Record) {
	s.scratch = stream.AppendRecord(s.scratch[:0], r)
	if _, err := s.w.Write(s.scratch); err != nil && s.err == nil {
		s.err = err
	}
}

// pickWorkload resolves a -workload flag value.
func pickWorkload(name string) (workload.Workload, error) {
	for _, wl := range []workload.Workload{
		workload.Stress{}, workload.GAE{}, workload.WeBWorK{},
		workload.EventServer{}, workload.Solr{}, workload.RSA{},
	} {
		if strings.EqualFold(wl.Name(), name) {
			return wl, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// pickApproach resolves an -attribution flag value.
func pickApproach(name string) (core.Approach, error) {
	for _, ap := range experiments.Approaches() {
		if ap.String() == name {
			return ap, nil
		}
	}
	return 0, fmt.Errorf("unknown attribution approach %q (want core-only, chip-share, or recalibrated)", name)
}

// pickMachine resolves a -machine flag value.
func pickMachine(name string) (cpu.MachineSpec, error) {
	for _, spec := range cpu.Specs() {
		if strings.EqualFold(spec.Name, name) {
			return spec, nil
		}
	}
	return cpu.MachineSpec{}, fmt.Errorf("unknown machine %q", name)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pcstream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	machine := fs.String("machine", "SandyBridge", "machine spec name")
	wlName := fs.String("workload", "Stress", "workload name")
	load := fs.Float64("load", 0.5, "open-loop arrival rate as a fraction of peak")
	attribution := fs.String("attribution", "recalibrated", "attribution approach: core-only, chip-share, recalibrated")
	durationS := fs.Float64("duration", 10, "virtual seconds to stream")
	tickMS := fs.Int64("tick", 100, "streaming tick in virtual milliseconds")
	seed := fs.Uint64("seed", 1, "simulation seed (identical seeds reproduce identical streams)")
	cpPath := fs.String("checkpoint", "", "write the latest checkpoint JSON to this file")
	cpEvery := fs.Int("checkpoint-every", 0, "take an automatic checkpoint every N ticks (0 = only at the end; 10 in -dir mode)")
	resume := fs.String("resume", "", "resume from a checkpoint file written by -checkpoint (requires identical machine/workload/seed flags)")
	dir := fs.String("dir", "", "durable mode: stream through a crash-safe WAL + checkpoint store in this directory and print the stream read back from it")
	supervise := fs.Bool("supervise", false, "restart crashed attempts with exponential backoff (requires -dir)")
	maxRestarts := fs.Int("max-restarts", 8, "restart budget for -supervise")
	backoffMS := fs.Int("backoff-ms", 100, "base wait before restart n, doubling each restart (0 = no waiting)")
	var crashSpecs []*faults.CrashPlan
	fs.Func("crash", "crash-plan `spec` injected into the next attempt (repeatable; uses an in-memory store; requires -supervise)", func(v string) error {
		p, err := faults.ParseCrashPlan(v)
		if err != nil {
			return err
		}
		crashSpecs = append(crashSpecs, p)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *durationS <= 0 || *tickMS <= 0 {
		return fmt.Errorf("duration and tick must be positive")
	}
	if *dir == "" && (*supervise || len(crashSpecs) > 0) {
		return fmt.Errorf("-supervise and -crash require -dir")
	}
	if len(crashSpecs) > 0 && !*supervise {
		return fmt.Errorf("-crash requires -supervise (an unsupervised crash just kills the run)")
	}
	if *dir != "" && (*cpPath != "" || *resume != "") {
		return fmt.Errorf("-dir manages its own checkpoints; drop -checkpoint/-resume")
	}
	spec, err := pickMachine(*machine)
	if err != nil {
		return err
	}
	wl, err := pickWorkload(*wlName)
	if err != nil {
		return err
	}
	ap, err := pickApproach(*attribution)
	if err != nil {
		return err
	}

	baseSeed = *seed
	horizon := sim.Time(*durationS * float64(sim.Second))
	// Every attempt — the plain run, or each supervised restart — rebuilds
	// the identically seeded machine from scratch: determinism is what
	// makes the recovered replay reproduce the durable stream.
	newSources := func() (stream.Sources, error) {
		m, err := experiments.NewMachine(spec, ap, baseSeed)
		if err != nil {
			return stream.Sources{}, err
		}
		dep := wl.Deploy(m.K, m.Rng.Fork(11))
		gen := server.NewLoadGen(m.K, m.Fac, dep)
		gen.RunOpenLoop(*load*experiments.PeakRate(m.K.Spec, dep), horizon, m.Rng.Fork(13))
		var meter power.Meter
		scope := model.ScopeMachine
		if r := m.Fac.Recalibrator(); r != nil {
			meter, scope = r.Meter, r.Scope
		} else {
			meter, scope = m.Chip, model.ScopePackage
		}
		return stream.Sources{Eng: m.Eng, Fac: m.Fac, Meter: meter, Scope: scope}, nil
	}
	cfg := stream.Config{Tick: sim.Time(*tickMS) * sim.Millisecond, CheckpointEvery: *cpEvery}

	if *dir != "" {
		if cfg.CheckpointEvery == 0 {
			cfg.CheckpointEvery = 10
		}
		return runDurable(durableRun{
			dir: *dir, cfg: cfg, horizon: horizon, newSources: newSources,
			supervise: *supervise, maxRestarts: *maxRestarts, backoffMS: *backoffMS,
			plans: crashSpecs,
		}, stdout, stderr)
	}

	src, err := newSources()
	if err != nil {
		return err
	}
	var e *stream.Engine
	if *resume != "" {
		data, err := os.ReadFile(*resume)
		if err != nil {
			return err
		}
		cp, err := stream.DecodeCheckpoint(data)
		if err != nil {
			return err
		}
		if e, err = stream.ReplayTo(src, cfg, cp); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "resumed at tick %d (t=%s) from %s\n", e.Tick(), sim.FormatTime(e.Now()), *resume)
	} else {
		e = stream.New(src, cfg)
	}

	out := bufio.NewWriter(stdout)
	sink := &lineSink{w: out}
	hasher := stream.NewHasher()
	e.Sink = stream.Tee{sink, hasher}
	e.RunUntil(horizon)
	if err := out.Flush(); err != nil {
		return err
	}
	if sink.err != nil {
		return sink.err
	}

	if *cpPath != "" {
		cp := e.Checkpoint()
		if err := os.WriteFile(*cpPath, stream.EncodeCheckpoint(cp), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "checkpoint at tick %d written to %s\n", cp.Tick, *cpPath)
	}
	fmt.Fprintf(stderr, "streamed %d ticks, %d records, %s J attributed, stream sha256 %s\n",
		e.Tick(), hasher.Count(), fmt.Sprintf("%.3f", e.CumAttributedJ()), hasher.Sum())
	return nil
}

// durableRun is the configuration for one durable-mode invocation.
type durableRun struct {
	dir        string
	cfg        stream.Config
	horizon    sim.Time
	newSources func() (stream.Sources, error)

	supervise   bool
	maxRestarts int
	backoffMS   int
	// plans[i] is the crash plan injected into attempt i (in-memory
	// store); attempts beyond the list run undisturbed.
	plans []*faults.CrashPlan
}

// runDurable streams through the crash-safe store: recover, resume, run
// to the horizon (under the supervisor when asked), then print the
// durable stream read back from the WAL — exactly the records an
// uninterrupted run emits, no matter how many times attempts died.
func runDurable(dr durableRun, stdout, stderr io.Writer) error {
	var fsys durable.FS = durable.OSFS{}
	var mem *durable.MemFS
	if len(dr.plans) > 0 {
		mem = durable.NewMemFS()
		fsys = mem
	}

	attemptN := 0
	frontier := int64(0) // durable frontier found by the latest recovery
	attempt := func() error {
		f := fsys
		if mem != nil && attemptN < len(dr.plans) {
			f = faults.NewCrashFS(mem, dr.plans[attemptN])
		}
		attemptN++
		src, err := dr.newSources()
		if err != nil {
			return err
		}
		st, rec, err := stream.OpenStore(f, dr.dir, nil)
		if err != nil {
			return err
		}
		frontier = rec.LastSeq
		fmt.Fprintf(stderr, "recovery: mode=%s frontier=%d\n", rec.Mode, rec.LastSeq)
		e, err := stream.Resume(src, dr.cfg, st, rec)
		if err != nil {
			return err
		}
		e.RunUntil(dr.horizon)
		return st.Close()
	}

	if dr.supervise {
		sup := &stream.Supervisor{
			MaxRestarts: dr.maxRestarts,
			IsCrash:     func(r any) bool { _, ok := r.(faults.Crash); return ok },
			Progress:    func() int64 { return frontier },
			OnRestart:   func(n int, cause string) { fmt.Fprintf(stderr, "restart %d: %s\n", n, cause) },
		}
		if dr.backoffMS > 0 {
			sup.Sleep = func(restart int) {
				d := time.Duration(dr.backoffMS) * time.Millisecond
				for i := 1; i < restart && d < 10*time.Second; i++ {
					d *= 2
				}
				if d > 10*time.Second {
					d = 10 * time.Second
				}
				time.Sleep(d)
			}
		}
		if err := sup.Run(attempt); err != nil {
			return err
		}
	} else if err := attempt(); err != nil {
		return err
	}

	// The WAL is the output: print it back so stdout carries each record
	// exactly once, in order, independent of the crash history above.
	out := bufio.NewWriter(stdout)
	h := sha256.New()
	var records int64
	if err := stream.ReadStream(fsys, dr.dir, func(seq int64, line []byte) error {
		records = seq
		h.Write(line)
		_, err := out.Write(line)
		return err
	}); err != nil {
		return err
	}
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "durable stream: %d records, %d attempts, sha256 %s\n",
		records, attemptN, hex.EncodeToString(h.Sum(nil)))
	return nil
}
