package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunStreamsDeterministically: the same flags produce the
// byte-identical record stream, and the stream is non-trivial.
func TestRunStreamsDeterministically(t *testing.T) {
	args := []string{"-duration", "4", "-seed", "9"}
	var out1, out2, errb bytes.Buffer
	if err := run(args, &out1, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &out2, &errb); err != nil {
		t.Fatal(err)
	}
	if out1.Len() == 0 {
		t.Fatal("no records streamed")
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("identical flags produced different streams")
	}
	if !strings.HasPrefix(out1.String(), "c,") && !strings.HasPrefix(out1.String(), "s,") {
		t.Fatalf("unexpected stream leader: %q", out1.String()[:40])
	}
}

// TestRunCheckpointResume: streaming to a mid-run checkpoint and resuming
// from it emits exactly the records the uninterrupted run emits after the
// cut — the CLI-level replay contract.
func TestRunCheckpointResume(t *testing.T) {
	base := []string{"-duration", "6", "-seed", "11", "-workload", "GAE-Vosao", "-load", "0.4"}
	var full, errb bytes.Buffer
	if err := run(base, &full, &errb); err != nil {
		t.Fatal(err)
	}

	cp := filepath.Join(t.TempDir(), "cp.json")
	var head bytes.Buffer
	if err := run(append([]string{"-checkpoint", cp}, append([]string{"-duration", "2.5"}, base[2:]...)...), &head, &errb); err != nil {
		t.Fatal(err)
	}
	var tail bytes.Buffer
	if err := run(append([]string{"-resume", cp}, base...), &tail, &errb); err != nil {
		t.Fatal(err)
	}
	// -duration 2.5 streams 25 whole 100ms ticks; the head is everything
	// the full run emitted through tick 25.
	if !bytes.Equal(append(head.Bytes(), tail.Bytes()...), full.Bytes()) {
		t.Fatalf("head (%d bytes) + resumed tail (%d bytes) != uninterrupted stream (%d bytes)",
			head.Len(), tail.Len(), full.Len())
	}
	if !strings.Contains(errb.String(), "resumed at tick 25") {
		t.Fatalf("resume did not report the cut: %s", errb.String())
	}
}

// TestRunFlagValidation: bad flag values surface as errors, not panics.
func TestRunFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-machine", "nope"},
		{"-attribution", "nope"},
		{"-duration", "0"},
		{"extra"},
	} {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunDurableMatchesPlainRun: -dir streams through the WAL store and
// prints the stream read back from it — byte-identical to the plain run —
// and rerunning over the same store re-emits the identical stream without
// appending anything twice.
func TestRunDurableMatchesPlainRun(t *testing.T) {
	base := []string{"-duration", "4", "-seed", "9", "-workload", "GAE-Vosao", "-load", "0.4"}
	var plain, errb bytes.Buffer
	if err := run(base, &plain, &errb); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "wal")
	var first, ferr bytes.Buffer
	if err := run(append([]string{"-dir", dir}, base...), &first, &ferr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), plain.Bytes()) {
		t.Fatalf("durable stream (%d bytes) differs from plain run (%d bytes)", first.Len(), plain.Len())
	}
	if !strings.Contains(ferr.String(), "recovery: mode=fresh") {
		t.Fatalf("first open not fresh: %s", ferr.String())
	}

	var again, aerr bytes.Buffer
	if err := run(append([]string{"-dir", dir}, base...), &again, &aerr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), plain.Bytes()) {
		t.Fatal("re-run over the finished store changed the stream")
	}
	if !strings.Contains(aerr.String(), "recovery: mode=checkpoint") {
		t.Fatalf("re-run did not recover from the checkpoint: %s", aerr.String())
	}
}

// TestRunSuperviseCrashRecovery is the CLI-level exactly-once contract:
// three injected crashes — mid-WAL-sync, a torn WAL append, and a death
// at the checkpoint rename — each kill an attempt, the supervisor
// restarts through them, and the final stdout is byte-identical to the
// uninterrupted run.
func TestRunSuperviseCrashRecovery(t *testing.T) {
	base := []string{"-duration", "4", "-seed", "9", "-workload", "GAE-Vosao", "-load", "0.4"}
	var plain, errb bytes.Buffer
	if err := run(base, &plain, &errb); err != nil {
		t.Fatal(err)
	}

	args := append([]string{
		"-dir", "wal", "-supervise", "-backoff-ms", "0",
		"-crash", "crash:op=sync,match=wal-,index=3",
		"-crash", "crash:op=write,match=wal-,index=40,keep=6",
		"-crash", "crash:op=rename,match=checkpoint.ck,index=2",
	}, base...)
	var got, serr bytes.Buffer
	if err := run(args, &got, &serr); err != nil {
		t.Fatalf("supervised run: %v\nstderr: %s", err, serr.String())
	}
	if !bytes.Equal(got.Bytes(), plain.Bytes()) {
		t.Fatalf("stream after 3 injected crashes (%d bytes) differs from uninterrupted run (%d bytes)\nstderr: %s",
			got.Len(), plain.Len(), serr.String())
	}
	if !strings.Contains(serr.String(), "restart 3:") {
		t.Fatalf("supervisor did not report three restarts: %s", serr.String())
	}
	if !strings.Contains(serr.String(), "4 attempts") {
		t.Fatalf("summary missing attempt count: %s", serr.String())
	}
}

// TestRunDurableFlagValidation: the durable-mode flag combinations that
// cannot work are refused up front.
func TestRunDurableFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	for _, args := range [][]string{
		{"-supervise"},
		{"-crash", "crash:op=sync,index=1"},
		{"-dir", "d", "-crash", "crash:op=sync,index=1"},
		{"-dir", "d", "-resume", "cp.json"},
		{"-dir", "d", "-checkpoint", "cp.json"},
		{"-dir", "d", "-supervise", "-crash", "nonsense"},
	} {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
