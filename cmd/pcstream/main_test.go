package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunStreamsDeterministically: the same flags produce the
// byte-identical record stream, and the stream is non-trivial.
func TestRunStreamsDeterministically(t *testing.T) {
	args := []string{"-duration", "4", "-seed", "9"}
	var out1, out2, errb bytes.Buffer
	if err := run(args, &out1, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &out2, &errb); err != nil {
		t.Fatal(err)
	}
	if out1.Len() == 0 {
		t.Fatal("no records streamed")
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("identical flags produced different streams")
	}
	if !strings.HasPrefix(out1.String(), "c,") && !strings.HasPrefix(out1.String(), "s,") {
		t.Fatalf("unexpected stream leader: %q", out1.String()[:40])
	}
}

// TestRunCheckpointResume: streaming to a mid-run checkpoint and resuming
// from it emits exactly the records the uninterrupted run emits after the
// cut — the CLI-level replay contract.
func TestRunCheckpointResume(t *testing.T) {
	base := []string{"-duration", "6", "-seed", "11", "-workload", "GAE-Vosao", "-load", "0.4"}
	var full, errb bytes.Buffer
	if err := run(base, &full, &errb); err != nil {
		t.Fatal(err)
	}

	cp := filepath.Join(t.TempDir(), "cp.json")
	var head bytes.Buffer
	if err := run(append([]string{"-checkpoint", cp}, append([]string{"-duration", "2.5"}, base[2:]...)...), &head, &errb); err != nil {
		t.Fatal(err)
	}
	var tail bytes.Buffer
	if err := run(append([]string{"-resume", cp}, base...), &tail, &errb); err != nil {
		t.Fatal(err)
	}
	// -duration 2.5 streams 25 whole 100ms ticks; the head is everything
	// the full run emitted through tick 25.
	if !bytes.Equal(append(head.Bytes(), tail.Bytes()...), full.Bytes()) {
		t.Fatalf("head (%d bytes) + resumed tail (%d bytes) != uninterrupted stream (%d bytes)",
			head.Len(), tail.Len(), full.Len())
	}
	if !strings.Contains(errb.String(), "resumed at tick 25") {
		t.Fatalf("resume did not report the cut: %s", errb.String())
	}
}

// TestRunFlagValidation: bad flag values surface as errors, not panics.
func TestRunFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-machine", "nope"},
		{"-attribution", "nope"},
		{"-duration", "0"},
		{"extra"},
	} {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
