// Command pcreport runs a named workload under the power-container
// facility and exports per-request accounting as CSV or JSON — the raw
// material for billing, anomaly detection and capacity analysis.
//
// Usage:
//
//	pcreport -workload GAE-Hybrid -machine SandyBridge -load half \
//	         -duration 10s -format csv > requests.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/export"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// The -seed flag is the run's registered base seed: every generator in
// the simulation derives from it.
//
//pclint:seed
var seed = flag.Uint64("seed", 1, "simulation seed")

func main() {
	machine := flag.String("machine", "SandyBridge", "machine model")
	wl := flag.String("workload", "GAE-Hybrid", "workload name")
	loadFlag := flag.String("load", "half", "load level: peak or half")
	duration := flag.Duration("duration", 10*time.Second, "virtual run duration")
	format := flag.String("format", "csv", "output format: csv or json")
	byClient := flag.Bool("by-client", false, "aggregate usage per client principal instead of per request")
	clients := flag.Int("clients", 40, "size of the simulated client pool")
	flag.Parse()

	if err := run(*machine, *wl, *loadFlag, *duration, *format, *seed, *byClient, *clients); err != nil {
		fmt.Fprintln(os.Stderr, "pcreport:", err)
		os.Exit(1)
	}
}

func workloadByName(name string) (workload.Workload, error) {
	switch name {
	case "RSA-crypto":
		return workload.RSA{}, nil
	case "Solr":
		return workload.Solr{}, nil
	case "WeBWorK":
		return workload.WeBWorK{}, nil
	case "Stress":
		return workload.Stress{}, nil
	case "GAE-Vosao":
		return workload.GAE{}, nil
	case "GAE-Hybrid":
		return workload.GAE{VirusLoadFraction: 0.5}, nil
	case "EventServer":
		return workload.EventServer{}, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func run(machine, wl, loadFlag string, duration time.Duration, format string, seed uint64, byClient bool, clients int) error {
	spec, err := cpu.SpecByName(machine)
	if err != nil {
		return err
	}
	w, err := workloadByName(wl)
	if err != nil {
		return err
	}
	m, err := experiments.NewMachine(spec, core.ApproachRecalibrated, seed)
	if err != nil {
		return err
	}
	dep := w.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	gen.Clients = server.NewClientPool(clients, 0.9, m.Rng.Fork(15))
	until := sim.Time(duration)
	switch loadFlag {
	case "peak":
		gen.RunClosedLoop(experiments.PeakClients(spec), until)
	case "half":
		gen.RunOpenLoop(0.5*experiments.PeakRate(spec, dep), until, m.Rng.Fork(13))
	default:
		return fmt.Errorf("unknown load %q (peak|half)", loadFlag)
	}
	m.Eng.RunUntil(until)

	records := export.Collect(gen.Completed())
	if byClient {
		usage := export.AggregateByClient(records)
		if format == "json" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(usage)
		}
		fmt.Println("client,requests,energy_j,cpu_time_ms")
		for _, u := range usage {
			fmt.Printf("%s,%d,%.6f,%.3f\n", u.Client, u.Requests, u.EnergyJ, u.CPUTimeMs)
		}
		return nil
	}
	switch format {
	case "csv":
		return export.WriteCSV(os.Stdout, records)
	case "json":
		return export.WriteJSON(os.Stdout, records)
	}
	return fmt.Errorf("unknown format %q (csv|json)", format)
}
