// Command pcbench regenerates the tables and figures of "Power Containers"
// (ASPLOS 2013) on the simulated testbed.
//
// Usage:
//
//	pcbench -list
//	pcbench [-seed N] [-jobs N] <id>...   # fig1..fig14, table1, coeffs, overhead,
//	                                      # ablations, cluster3, faultmatrix
//	pcbench [-seed N] [-jobs N] all
//
// -jobs bounds the worker pool (default: GOMAXPROCS). Distinct experiments
// and the independent cells inside grid experiments run concurrently, but
// output is byte-identical at any -jobs value: every job owns its own
// simulation engine and RNG, and results assemble by plan index.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"powercontainers"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Uint64("seed", 1, "simulation seed (identical seeds reproduce identical results)")
	jobs := flag.Int("jobs", 0, "max concurrent simulation jobs (0 = GOMAXPROCS); output is identical at any value")
	flag.Parse()

	if *list {
		for _, e := range powercontainers.ListExperiments() {
			alias := ""
			if len(e.Aliases) > 0 {
				alias = fmt.Sprintf(" (includes %v)", e.Aliases)
			}
			fmt.Printf("%-9s %s%s\n", e.ID, e.Title, alias)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pcbench [-seed N] [-jobs N] <id>... | all | -list")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range powercontainers.ListExperiments() {
			ids = append(ids, e.ID)
		}
	}

	//pclint:allow detlint wall-clock timing summary for the operator, not experiment output
	start := time.Now()
	runs, err := powercontainers.RunExperiments(ids, *seed, *jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
		os.Exit(1)
	}
	//pclint:allow detlint wall-clock timing summary for the operator, not experiment output
	wall := time.Since(start)

	for _, r := range runs {
		fmt.Print(r.Output)
		fmt.Printf("[%s completed in %v]\n\n", r.ID, r.Elapsed.Round(time.Millisecond))
	}

	if len(runs) > 1 {
		var sum time.Duration
		fmt.Println("timing summary:")
		for _, r := range runs {
			sum += r.Elapsed
			fmt.Printf("  %-9s %v\n", r.ID, r.Elapsed.Round(time.Millisecond))
		}
		njobs := *jobs
		if njobs <= 0 {
			njobs = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("  %-9s %v (sum of experiment times)\n", "total", sum.Round(time.Millisecond))
		fmt.Printf("  %-9s %v (speedup %.2fx at jobs=%d)\n", "wall",
			wall.Round(time.Millisecond), float64(sum)/float64(wall), njobs)
	}
}
