// Command pcbench regenerates the tables and figures of "Power Containers"
// (ASPLOS 2013) on the simulated testbed.
//
// Usage:
//
//	pcbench -list
//	pcbench [-seed N] <id>...      # fig1..fig14, table1, coeffs, overhead
//	pcbench [-seed N] all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"powercontainers"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Uint64("seed", 1, "simulation seed (identical seeds reproduce identical results)")
	flag.Parse()

	if *list {
		for _, e := range powercontainers.ListExperiments() {
			alias := ""
			if len(e.Aliases) > 0 {
				alias = fmt.Sprintf(" (includes %v)", e.Aliases)
			}
			fmt.Printf("%-9s %s%s\n", e.ID, e.Title, alias)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pcbench [-seed N] <id>... | all | -list")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range powercontainers.ListExperiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := powercontainers.RunExperiment(id, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
