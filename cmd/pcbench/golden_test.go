package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"powercontainers"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files with the current renderings")

// checkGolden compares a rendering against its checked-in golden file.
// The renderings are pure functions of the seed, so any diff means either
// a deliberate output change (regenerate with -update) or a determinism
// regression.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./cmd/pcbench -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendering diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestFig8RenderingGolden locks the text rendering of a trimmed Figure 8
// grid (one machine, two workloads — the same slice the ordering test
// exercises) at seed 1.
func TestFig8RenderingGolden(t *testing.T) {
	r, err := experiments.Fig8(experiments.Fig8Options{
		Machines:  []cpu.MachineSpec{cpu.SandyBridge},
		Workloads: []workload.Workload{workload.Stress{}, workload.GAE{VirusLoadFraction: 0.5}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8_sandybridge.golden", r.Render())
}

// TestTable1RenderingGolden locks the full table1/fig14 rendering — the
// heterogeneity-aware request distribution comparison — at seed 1, going
// through the same RunExperiment entry point the pcbench binary uses.
func TestTable1RenderingGolden(t *testing.T) {
	out, err := powercontainers.RunExperiment("table1", 1)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.golden", out)
}
