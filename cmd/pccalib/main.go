// Command pccalib runs the offline power model calibration of §4.1 for one
// or all machine models and prints the coefficient tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
)

func main() {
	machine := flag.String("machine", "", "machine model (SandyBridge, Westmere, Woodcrest); empty = all")
	flag.Parse()

	specs := cpu.Specs()
	if *machine != "" {
		s, err := cpu.SpecByName(*machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccalib:", err)
			os.Exit(2)
		}
		specs = []cpu.MachineSpec{s}
	}
	for _, spec := range specs {
		r, err := experiments.Coefficients(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccalib:", err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
	}
}
